//! Round orchestration: the server-side round loop, decoupled from how
//! uploads travel.
//!
//! The (crate-private) `orchestrate` loop owns everything the server does
//! per round — cohort
//! selection, attack crafting, defense dispatch, the model update, periodic
//! evaluation — and talks to data-holding clients *exclusively* through the
//! [`Transport`] trait: broadcast the model to the round's members, collect
//! their uploads (already folded through the caller-supplied closure), and
//! publish the final summary.
//!
//! Two implementations exist:
//!
//! * [`InProcessTransport`] — the in-memory path every simulation run uses.
//!   It owns the worker pools and reproduces the PR-6 streaming fold exactly:
//!   contiguous cohort shards (one per rayon thread), one [`KsScratch`] per
//!   shard, sequential folding within a shard, results concatenated in shard
//!   order. Bit-identical at any thread count.
//! * `TcpTransport` (in [`crate::serving`]) — the wire path behind
//!   `dpbfl-server`/`dpbfl-client`, speaking the `dpbfl-transport` frame
//!   protocol over TCP or Unix-domain sockets.
//!
//! ## Determinism under dropouts
//!
//! The fold passed to [`Transport::round_trip`] is a *pure function* of the
//! upload bits (plus fixed per-round server state), so a transport may fold
//! uploads in any arrival order as long as it returns the collected slots in
//! member order. A member that misses the round's deadline (or disconnects)
//! yields [`Collected::Dropped`]; the orchestrator maps it to the same state
//! a first-stage rejection produces — a zero contribution, counted in the
//! existing rejection stats — so the accepted set alone determines the run,
//! bit-for-bit, regardless of timing.

use crate::attack::{
    craft_uploads_stateful, AttackContext, AttackSpec, AttackState, ByzantineData,
};
use crate::config::{DpSgdConfig, StepNormalization, UploadRetention};
use crate::first_stage::{CheckInfo, FirstStage, FirstStageVerdict, KsScratch};
use crate::second_stage::{ScoringRule, SecondStage};
use crate::simulation::{
    round_cohort, worker_seed, DefenseKind, DefenseStats, EvalPoint, Provisioning, RunSummary,
    SimulationConfig, WorkerProtocol,
};
use crate::worker::DpWorker;
use dpbfl_data::{flip_labels, Dataset};
use dpbfl_nn::{accuracy, CrossEntropyLoss, Sequential};
use dpbfl_stats::gaussian_vector;
use dpbfl_telemetry::{RoundMetrics, Telemetry};
use dpbfl_tensor::quant::QuantizedVec;
use dpbfl_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// What the server keeps of one member's round trip.
#[derive(Debug)]
pub enum Collected {
    /// The raw upload, materialized (reference pipeline / non-folding runs).
    Upload(Vec<f32>),
    /// The upload already folded through the two-stage streaming pipeline:
    /// its second-stage score, what was retained for the update, and the
    /// first stage's telemetry view (`None` when the stage is ablated off).
    Scored(f64, Retained, Option<CheckInfo>),
    /// The member never delivered: deadline missed, connection lost, or the
    /// client vanished. Treated exactly like a first-stage rejection.
    Dropped,
}

/// What the streaming fold keeps of one upload after filtering and scoring.
#[derive(Debug)]
pub enum Retained {
    /// Zeroed by the first stage: contributes literal `+0.0` to every score
    /// and nothing to the update, so no bytes are kept.
    Rejected,
    /// Stage-1 survivor, kept verbatim (bit-identical path).
    Exact(Vec<f32>),
    /// Stage-1 survivor, re-encoded as scale + `i16` codes (lossy memory
    /// mode, [`UploadRetention::Quantized`]).
    Quantized(QuantizedVec),
}

/// The per-upload fold a transport applies as uploads arrive.
///
/// A pure function of the upload bits (plus fixed per-round server state
/// captured by the closure): same upload, same scratch contents in, same
/// [`Collected`] out — which is what lets a transport fold in arrival order
/// and still return a deterministic result, as long as the returned slots
/// are in member order. `Sync` because [`InProcessTransport`] folds shards
/// in parallel.
pub type UploadFold<'a> = dyn Fn(Vec<f32>, &mut KsScratch) -> Collected + Sync + 'a;

/// How the round loop talks to data-holding clients.
///
/// One call per round: broadcast `params` to `members`, collect their
/// uploads, fold each through `fold`, and return the collected slots **in
/// member order** (one per member — late or missing members yield
/// [`Collected::Dropped`], never a shorter vector). `members` are global
/// worker indices, sorted ascending; `round` is the 0-based round index.
pub trait Transport {
    /// Runs one round trip: broadcast → collect → fold.
    fn round_trip(
        &mut self,
        round: usize,
        members: &[usize],
        params: &[f32],
        fold: &UploadFold<'_>,
    ) -> Vec<Collected>;

    /// Publishes the finished run's summary to the clients (no-op by
    /// default; the wire transport sends `RunComplete`).
    fn publish_summary(&mut self, _summary: &RunSummary) {}
}

/// The in-memory transport: owns the worker pools and steps them under
/// rayon, reproducing the PR-6 sharded streaming fold bit-for-bit.
///
/// Sharding recipe (the determinism-critical part): members are split at
/// `n_honest` into the two pools, and each pool's slice is folded as
/// contiguous chunks of `len.div_ceil(threads).max(1)` members — one fresh
/// [`KsScratch`] per chunk, sequential within a chunk, chunk results
/// concatenated in order. Verdicts and scores are pure functions of the
/// upload bits, so the merge is independent of thread count.
pub struct InProcessTransport<'a> {
    cfg: &'a SimulationConfig,
    dp: DpSgdConfig,
    /// Long-lived honest workers (pooled provisioning; empty on-demand).
    honest: Vec<DpWorker>,
    /// Long-lived label-flipped workers (pooled + poisoning attacks only).
    poisoned: Vec<DpWorker>,
    /// Architecture template for on-demand worker construction.
    template: Sequential,
}

impl<'a> InProcessTransport<'a> {
    /// Builds the worker pools exactly as the pre-refactor round loop did:
    /// the model template from the init stream `seed + 0x4d0de1`, honest
    /// workers over the first `n_honest` partitions, then label-flipped
    /// workers when the attack trains on poisoned data. `dp` must be the
    /// σ-resolved worker config (see [`crate::simulation::resolve_sigma`]).
    pub fn new(
        cfg: &'a SimulationConfig,
        prep: &crate::simulation::PreparedRun,
        dp: &DpSgdConfig,
    ) -> Self {
        let template = init_model(cfg);
        let pooled = cfg.provisioning == Provisioning::Pooled;
        let (train, parts) = (&prep.train, &prep.parts);
        let honest: Vec<DpWorker> = if pooled {
            (0..cfg.n_honest).map(|i| data_worker(cfg, train, parts, dp, &template, i)).collect()
        } else {
            Vec::new()
        };
        let poisoned: Vec<DpWorker> = if pooled && cfg.attack.needs_poisoned_workers() {
            (cfg.n_honest..cfg.n_honest + cfg.n_byzantine)
                .map(|i| data_worker(cfg, train, parts, dp, &template, i))
                .collect()
        } else {
            Vec::new()
        };
        InProcessTransport { cfg, dp: dp.clone(), honest, poisoned, template }
    }
}

/// The model template every worker clones: built from the init stream
/// `seed + 0x4d0de1`, bit-identical to the server's initial model.
pub(crate) fn init_model(cfg: &SimulationConfig) -> Sequential {
    let mut init_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x4d0de1));
    cfg.model.build(&mut init_rng, &cfg.dataset)
}

/// Whether data-holding member `index` trains on label-flipped data: only
/// Byzantine members, and only when the attack's data mode is
/// [`ByzantineData::Flipped`] — sleeper cover workers
/// ([`ByzantineData::Honest`]) train on honest data like everyone else.
/// Shared by every worker construction site (pooled, on-demand, and the
/// remote client) so all sides build bit-identical workers.
pub(crate) fn member_flips(cfg: &SimulationConfig, index: usize) -> bool {
    index >= cfg.n_honest && cfg.attack.byzantine_data() == ByzantineData::Flipped
}

/// Builds the long-lived worker of global index `index` from the pooled
/// training partition: honest below `n_honest`, label-flipped above (when
/// the attack poisons its members' data — see [`member_flips`]). The
/// single construction site shared by [`InProcessTransport`] and the remote
/// client — both sides build bit-identical workers from `(cfg, prep)`.
pub(crate) fn data_worker(
    cfg: &SimulationConfig,
    train: &Dataset,
    parts: &[Vec<usize>],
    dp: &DpSgdConfig,
    template: &Sequential,
    index: usize,
) -> DpWorker {
    let mut data = train.subset(&parts[index]);
    if member_flips(cfg, index) {
        flip_labels(&mut data);
    }
    DpWorker::new(template.clone(), data, dp.clone(), worker_seed(cfg.seed, index))
}

impl Transport for InProcessTransport<'_> {
    fn round_trip(
        &mut self,
        round: usize,
        members: &[usize],
        params: &[f32],
        fold: &UploadFold<'_>,
    ) -> Vec<Collected> {
        let InProcessTransport { cfg, dp, honest, poisoned, template } = self;
        let split = members.partition_point(|&i| i < cfg.n_honest);
        let (members_honest, members_byz) = members.split_at(split);
        let mut out = pool_fold(cfg, dp, template, honest, members_honest, 0, round, params, fold);
        out.extend(pool_fold(
            cfg,
            dp,
            template,
            poisoned,
            members_byz,
            cfg.n_honest,
            round,
            params,
            fold,
        ));
        out
    }
}

/// Whether the run's serving fault plan withholds `(member, round)`'s
/// upload. Mirrored bit-exactly by the wire client (which adopts the plan
/// from the server's `Welcome` config), so served and in-process runs build
/// the same accepted set under the same schedule. A `deadline_ms` of
/// `Some(0)` withholds everything: over the wire no upload can beat a zero
/// deadline, because nothing is queued before the round broadcast.
pub(crate) fn plan_withholds(cfg: &SimulationConfig, member: usize, round: usize) -> bool {
    match &cfg.serving {
        Some(s) => s.deadline_ms == Some(0) || s.fault.withholds(member, round),
        None => false,
    }
}

/// Folds one pool's cohort slice under rayon: the sharding recipe described
/// on [`InProcessTransport`], identical for the pooled and on-demand cases.
///
/// A member the serving fault plan withholds still *steps* (its RNG and
/// momentum state must evolve exactly as on a remote client that skips the
/// send) but its upload never reaches `fold` — folding feeds defense state
/// downstream, so a withheld upload folds as nothing and the member yields
/// [`Collected::Dropped`], just like a deadline miss over the wire.
#[allow(clippy::too_many_arguments)]
fn pool_fold(
    cfg: &SimulationConfig,
    dp: &DpSgdConfig,
    template: &Sequential,
    pool: &mut [DpWorker],
    members: &[usize],
    base: usize,
    round: usize,
    params: &[f32],
    fold: &UploadFold<'_>,
) -> Vec<Collected> {
    let shard = members.len().div_ceil(rayon::current_num_threads().max(1)).max(1);
    let withheld: Vec<bool> = members.iter().map(|&m| plan_withholds(cfg, m, round)).collect();
    let nested: Vec<Vec<Collected>> = if cfg.provisioning == Provisioning::Pooled {
        let mut refs = cohort_refs(pool, members, base);
        let shards: Vec<(&mut [&mut DpWorker], &[bool])> =
            refs.chunks_mut(shard).zip(withheld.chunks(shard)).collect();
        shards
            .into_par_iter()
            .map(|(shard, wh)| {
                let mut scratch = KsScratch::new();
                shard
                    .iter_mut()
                    .zip(wh)
                    .map(|(w, &withhold)| {
                        let upload = protocol_step(w, params, cfg.protocol);
                        if withhold {
                            Collected::Dropped
                        } else {
                            fold(upload, &mut scratch)
                        }
                    })
                    .collect()
            })
            .collect()
    } else {
        let shards: Vec<(&[usize], &[bool])> =
            members.chunks(shard).zip(withheld.chunks(shard)).collect();
        shards
            .into_par_iter()
            .map(|(shard, wh)| {
                let mut scratch = KsScratch::new();
                shard
                    .iter()
                    .zip(wh)
                    .map(|(&i, &withhold)| {
                        // On-demand workers are rebuilt per round, so a
                        // withheld member need not even step.
                        if withhold {
                            return Collected::Dropped;
                        }
                        let mut w =
                            on_demand_worker(cfg, template, dp, i, round, member_flips(cfg, i));
                        let upload = protocol_step(&mut w, params, cfg.protocol);
                        fold(upload, &mut scratch)
                    })
                    .collect()
            })
            .collect()
    };
    nested.into_iter().flatten().collect()
}

/// Runs the full round loop against `transport`; returns the accuracy
/// trajectory and the defense bookkeeping.
///
/// `dp` is the σ-resolved worker config and `lr` the tuned learning rate
/// (both produced by [`crate::simulation::run_with_transport`]); `defense` /
/// `fltrust_state` hold the server-side defense state matching
/// `cfg.defense`. `eps_schedule` is the precomputed cumulative-ε schedule
/// (`None` for non-private or untelemetered runs) — only telemetry reads
/// it; caching it outside the loop keeps the per-round ε annotation to a
/// cheap RDP→(ε, δ) conversion instead of re-deriving the RDP curve.
///
/// Telemetry is collected *after* the fold's shard merge, sequentially in
/// cohort order, so the deterministic counters are bit-identical at any
/// thread count; with [`Telemetry::null`] no record is ever constructed and
/// the loop is byte-identical to a telemetry-free build.
#[allow(clippy::too_many_arguments)]
pub(crate) fn orchestrate(
    cfg: &SimulationConfig,
    dp: &DpSgdConfig,
    lr: f64,
    test: &Dataset,
    server_model: &mut Sequential,
    params: &mut [f32],
    defense: &mut Option<TwoStageState>,
    fltrust_state: &mut Option<(Dataset, Sequential, Vec<f32>)>,
    transport: &mut dyn Transport,
    tel: &Telemetry,
    eps_schedule: Option<&dpbfl_dp::EpsilonSchedule>,
) -> (Vec<EvalPoint>, DefenseStats) {
    let d = params.len();
    let needs_poisoned = cfg.attack.needs_poisoned_workers();
    let iterations = cfg.iterations();
    let eval_every = if cfg.eval_every > 0 {
        cfg.eval_every
    } else {
        (cfg.per_worker / cfg.dp.batch_size).max(1) // once per epoch
    };
    let mut history = Vec::new();
    let mut stats = DefenseStats::default();
    let mut attack_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xa77ac4));
    // Cross-round attacker state: created once per run, fed the defense's
    // observable output (the stage-1 acceptance count) after every round.
    if let Err(e) = cfg.attack.validate() {
        panic!("invalid attack spec: {e}");
    }
    let mut attack_state = AttackState::new(&cfg.attack);

    for t in 0..iterations {
        // The round's participants: drawn sequentially, before any parallel
        // work. `split` partitions the sorted cohort into honest ([..split])
        // and Byzantine ([split..]) members.
        let cohort = round_cohort(cfg, t);
        let split = cohort.partition_point(|&i| i < cfg.n_honest);
        let (cohort_honest, cohort_byz) = cohort.split_at(split);

        // Deterministic per-round counters, built only when a sink is
        // attached — the disabled path allocates nothing.
        let mut metrics = tel.enabled().then(|| RoundMetrics::new(t as u64, cohort.len() as u64));

        // Data-holding members the transport must reach this round: the
        // honest cohort, plus the Byzantine cohort when the attack trains on
        // poisoned local data (label-flip). Attacks crafted server-side by
        // the omniscient adversary never touch the transport.
        let data_members: &[usize] = if needs_poisoned { &cohort } else { cohort_honest };

        // The production two-stage path folds over the upload stream: one
        // upload in flight per thread, only stage-1 survivors retained.
        // Attacks that read the whole benign cohort at once (OptLMP, "a
        // little", inner-product, adaptive) force the materialized reference
        // path below.
        let streaming = cfg.defense == DefenseKind::TwoStage
            && cfg.defense_cfg.streaming_fold
            && matches!(
                cfg.attack,
                AttackSpec::None | AttackSpec::Gaussian | AttackSpec::LabelFlip
            );

        // Each branch reports the round's stage-1 acceptance count — the
        // defense's public output that the acceptance-rate-adaptive attacker
        // observes (identical to the telemetry record's `accepted` counter).
        let accepted: u64 = if streaming {
            let state = defense.as_mut().expect("two-stage state always built");
            // Server's clean gradient, hoisted ahead of the fold so every
            // upload can be scored the moment it survives the first stage —
            // bit-safe because its computation is RNG-free and reads only
            // `params`, which no worker mutates.
            let g_s_norm = state.begin_round(cfg, params);
            let first = &state.first;
            let grad = &state.grad_buf;
            let fold = |upload: Vec<f32>, scratch: &mut KsScratch| {
                let (score, retained, info) =
                    fold_upload(first, cfg, upload, scratch, grad, g_s_norm);
                Collected::Scored(score, retained, info)
            };
            let timer = tel.start();
            let collected = transport.round_trip(t, data_members, params, &fold);
            tel.stop(timer, "collect", Some(t as u64));
            debug_assert_eq!(collected.len(), data_members.len());
            let mut folds: Vec<(f64, Retained, Option<CheckInfo>)> = collected
                .into_iter()
                .map(|c| match c {
                    Collected::Scored(score, retained, info) => (score, retained, info),
                    // Late/missing uploads join the rejected set: the same
                    // +0.0 score and zero update contribution a first-stage
                    // rejection produces. No `CheckInfo`: the first stage
                    // never saw them (telemetry counts them as dropped).
                    Collected::Dropped => (0.0, Retained::Rejected, None),
                    Collected::Upload(_) => unreachable!("streaming fold returns scored slots"),
                })
                .collect();

            // Byzantine cohort members the transport did not cover.
            let timer = tel.start();
            match &cfg.attack {
                AttackSpec::None => {
                    // `craft_uploads` produces nothing for `None`, so a
                    // non-empty Byzantine cohort can't fill its upload slots;
                    // the materialized pipeline panics on the count mismatch
                    // and the streaming fold preserves that contract.
                    assert!(cohort_byz.is_empty(), "upload count changed mid-training");
                }
                AttackSpec::Gaussian => {
                    // One draw–fold cycle per Byzantine slot, strictly
                    // sequential from the single attack stream — the same
                    // draws in the same order `craft_uploads` makes, and the
                    // fold consumes no RNG, so interleaving is bit-safe.
                    let mut scratch = KsScratch::new();
                    for _ in cohort_byz {
                        let upload = gaussian_vector(&mut attack_rng, dp.effective_noise_std(), d);
                        folds.push(fold_upload(first, cfg, upload, &mut scratch, grad, g_s_norm));
                    }
                }
                // Label-flip members were data members: already folded.
                AttackSpec::LabelFlip => {}
                other => unreachable!("attack {other:?} is not streamable (materialized path)"),
            }
            tel.stop(timer, "attack", Some(t as u64));
            debug_assert_eq!(folds.len(), cohort.len());

            let timer = tel.start();
            let update =
                state.finish_streaming(cfg, &cohort, &folds, &mut stats, lr, metrics.as_mut());
            vecops::add_assign(params, &update);
            tel.stop(timer, "aggregate", Some(t as u64));
            // Mirrors `note_stage1`: a `None` info is an acceptance only when
            // the stage never rejected it (ablated stage), not when the
            // upload was dropped in flight.
            folds
                .iter()
                .filter(|(_, r, info)| {
                    info.map_or(!matches!(r, Retained::Rejected), |ci| ci.verdict.is_accepted())
                })
                .count() as u64
        } else {
            // Materialized reference pipeline: collect the raw uploads.
            let fold = |upload: Vec<f32>, _scratch: &mut KsScratch| Collected::Upload(upload);
            let timer = tel.start();
            let collected = transport.round_trip(t, data_members, params, &fold);
            tel.stop(timer, "collect", Some(t as u64));
            debug_assert_eq!(collected.len(), data_members.len());
            let mut slots = collected.into_iter().map(|c| match c {
                Collected::Upload(u) => u,
                // A dropped member contributes the zero vector — exactly
                // what a first-stage rejection would zero it to (telemetry
                // counts it among the norm-test rejections downstream).
                Collected::Dropped => vec![0.0f32; d],
                Collected::Scored(..) => unreachable!("materialized fold returns raw uploads"),
            });
            let benign: Vec<Vec<f32>> = slots.by_ref().take(cohort_honest.len()).collect();
            let poisoned_uploads: Vec<Vec<f32>> = slots.collect();

            // The omniscient adversary crafts its uploads (one per Byzantine
            // cohort member).
            let ctx = AttackContext {
                benign_uploads: &benign,
                d,
                n_byzantine: cohort_byz.len(),
                noise_std: dp.effective_noise_std(),
                round: t,
                total_rounds: iterations,
                poisoned_uploads: &poisoned_uploads,
            };
            let timer = tel.start();
            let byzantine =
                craft_uploads_stateful(&cfg.attack, &ctx, &mut attack_state, &mut attack_rng);
            tel.stop(timer, "attack", Some(t as u64));

            let mut uploads = benign;
            uploads.extend(byzantine);

            // Server step. Defenses without a per-upload filter accept (and
            // aggregate) the whole cohort; their telemetry records exactly
            // that, with no stage-1/stage-2 breakdown.
            if let Some(m) = &mut metrics {
                if cfg.defense != DefenseKind::TwoStage {
                    m.accepted = cohort.len() as u64;
                    m.selected = cohort.len() as u64;
                    m.retained_exact_bytes = (cohort.len() * d * 4) as u64;
                }
            }
            match (&cfg.defense, defense.as_mut()) {
                (DefenseKind::NoDefense, _) => {
                    let timer = tel.start();
                    let refs: Vec<&[f32]> = uploads.iter().map(|u| u.as_slice()).collect();
                    let g = vecops::mean(&refs).expect("at least one worker");
                    vecops::axpy(-(lr as f32), &g, params);
                    tel.stop(timer, "aggregate", Some(t as u64));
                    cohort.len() as u64
                }
                (DefenseKind::Robust { rule }, _) => {
                    let timer = tel.start();
                    let g = rule.aggregate(&uploads);
                    vecops::axpy(-(lr as f32), &g, params);
                    tel.stop(timer, "aggregate", Some(t as u64));
                    cohort.len() as u64
                }
                (DefenseKind::TwoStage, Some(state)) => {
                    let (update, accepted) = state.step(
                        cfg,
                        &cohort,
                        &mut uploads,
                        params,
                        &mut stats,
                        lr,
                        tel,
                        metrics.as_mut(),
                    );
                    vecops::add_assign(params, &update);
                    accepted
                }
                (DefenseKind::TwoStage, None) => unreachable!("two-stage state always built"),
                (DefenseKind::FlTrust, _) => {
                    let timer = tel.start();
                    let (aux, model, grad_buf) =
                        fltrust_state.as_mut().expect("fltrust state always built");
                    model.set_params(params);
                    let loss_fn = CrossEntropyLoss;
                    // Trust gradient in one batched forward/backward: the aux
                    // dataset's features are already the packed matrix.
                    model.batch_gradient_packed(&loss_fn, &aux.features, &aux.labels, grad_buf);
                    let refs: Vec<&[f32]> = uploads.iter().map(|u| u.as_slice()).collect();
                    let g = crate::aggregator_ext::fltrust(&refs, grad_buf);
                    vecops::axpy(-(lr as f32), &g, params);
                    tel.stop(timer, "aggregate", Some(t as u64));
                    cohort.len() as u64
                }
            }
        };

        // Stamp the scale the attacker used this round (before the feedback
        // step advances it), then let the attacker observe the defense's
        // acceptance count — the cross-round feedback loop.
        if let Some(m) = &mut metrics {
            m.attack_scale = attack_state.round_scale();
        }
        attack_state.observe(accepted, cohort.len() as u64);

        // Publish the round's deterministic counters, stamped with the
        // cumulative achieved ε through this round.
        if let Some(mut m) = metrics {
            if let Some(schedule) = eps_schedule {
                m.achieved_epsilon = Some(schedule.epsilon_at((t + 1) as u64));
            }
            tel.round(m);
        }

        // Periodic evaluation.
        if (t + 1) % eval_every == 0 || t + 1 == iterations {
            let timer = tel.start();
            server_model.set_params(params);
            let acc = accuracy(server_model, &test.features, &test.labels);
            tel.stop(timer, "eval", Some(t as u64));
            history.push(EvalPoint {
                iteration: t + 1,
                epoch: (t + 1) as f64 * cfg.dp.batch_size as f64 / cfg.per_worker as f64,
                accuracy: acc,
            });
        }
    }

    (history, stats)
}

/// The two-stage defense's mutable state.
pub(crate) struct TwoStageState {
    pub(crate) first: FirstStage,
    pub(crate) second: SecondStage,
    pub(crate) aux: Dataset,
    pub(crate) server_model: Sequential,
    pub(crate) grad_buf: Vec<f32>,
}

impl TwoStageState {
    /// Runs Algorithms 2 + 3 for one round over the materialized cohort
    /// upload matrix; returns the (already lr-scaled) parameter update and
    /// the stage-1 acceptance count (the defense's public output an adaptive
    /// attacker can observe).
    ///
    /// `uploads[k]` is the upload of global worker `cohort[k]`; at full
    /// participation the cohort is the identity and this is exactly the
    /// pre-sampling pipeline.
    ///
    /// `metrics` (present iff a telemetry sink is attached) receives the
    /// round's stage-1 breakdown, score summary and selection count,
    /// accumulated sequentially in cohort order.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        cfg: &SimulationConfig,
        cohort: &[usize],
        uploads: &mut [Vec<f32>],
        params: &[f32],
        stats: &mut DefenseStats,
        lr: f64,
        tel: &Telemetry,
        mut metrics: Option<&mut RoundMetrics>,
    ) -> (Vec<f32>, u64) {
        let round = metrics.as_ref().map(|m| m.round);
        // First stage: test-and-zero every upload. The per-upload checks fan
        // out under rayon as one contiguous chunk per thread; each chunk owns
        // one `KsScratch` (histogram + sort buffer) reused across its
        // uploads. `FirstStage` is stateless per upload and the scratch is
        // fully rewritten per check, so verdicts are independent of chunking,
        // evaluation order and thread count; flattening the per-chunk verdict
        // vectors in chunk order restores upload order exactly. The ablation
        // flags can disable the stage entirely or force the always-sort
        // reference path (decision-equivalent by contract).
        let timer = tel.start();
        let verdicts: Vec<Option<CheckInfo>> = if !cfg.defense_cfg.first_stage_enabled {
            vec![None; uploads.len()]
        } else if !cfg.defense_cfg.ks_fast_path {
            let first = &self.first;
            uploads.par_iter_mut().map(|u| Some(first.filter_reference_info(u))).collect()
        } else {
            let first = &self.first;
            let chunk = uploads.len().div_ceil(rayon::current_num_threads().max(1)).max(1);
            let chunks: Vec<&mut [Vec<f32>]> = uploads.chunks_mut(chunk).collect();
            let nested: Vec<Vec<Option<CheckInfo>>> = chunks
                .into_par_iter()
                .map(|chunk| {
                    let mut scratch = KsScratch::new();
                    chunk
                        .iter_mut()
                        .map(|u| Some(first.filter_with_info(u, &mut scratch)))
                        .collect()
                })
                .collect();
            nested.into_iter().flatten().collect()
        };
        tel.stop(timer, "stage1", round);
        let accepted_count =
            verdicts.iter().filter(|info| info.is_none_or(|i| i.verdict.is_accepted())).count()
                as u64;
        for (k, info) in verdicts.iter().enumerate() {
            if !info.is_none_or(|i| i.verdict.is_accepted()) {
                if cohort[k] < cfg.n_honest {
                    stats.first_stage_rejected_honest += 1;
                } else {
                    stats.first_stage_rejected_byzantine += 1;
                }
            }
        }
        if let Some(m) = metrics.as_deref_mut() {
            // Sequential, in cohort order — the chunked fan-out above merged
            // its verdicts back in chunk order, so this is thread-count
            // independent.
            for &info in &verdicts {
                note_stage1(m, info, false);
            }
            m.retained_exact_bytes = m.accepted * 4 * params.len() as u64;
        }

        // Server's clean gradient from auxiliary data (Algorithm 3 line 4),
        // as one batched forward/backward over the aux dataset's already
        // packed feature matrix — no per-round packing, no per-example
        // dispatch.
        let timer = tel.start();
        self.server_model.set_params(params);
        let loss_fn = CrossEntropyLoss;
        self.server_model.batch_gradient_packed(
            &loss_fn,
            &self.aux.features,
            &self.aux.labels,
            &mut self.grad_buf,
        );

        // Second stage: score, threshold, accumulate, select.
        let selection = self.second.select_for(cohort, uploads, &self.grad_buf);
        tel.stop(timer, "stage2", round);
        stats.total_selected += selection.selected.len() as u64;
        stats.byzantine_selected +=
            selection.selected.iter().filter(|&&i| i >= cfg.n_honest).count() as u64;
        if let Some(m) = metrics {
            // Post-suppression round scores, observed in cohort order — the
            // same vector (and order) the streaming path records, so the two
            // pipelines agree on the score summary.
            for &i in cohort {
                m.scores.observe(selection.round_scores[i]);
            }
            m.selected = selection.selected.len() as u64;
        }

        // Model update: w ← w − η·(1/n)·Σ_{g∈G} g (Algorithm 1 line 14).
        // `n` is the round's participant count — at full participation the
        // total worker count, as the paper writes it.
        let denom = match cfg.defense_cfg.step_normalization {
            StepNormalization::TotalWorkers => cohort.len() as f64,
            StepNormalization::SelectedCount => selection.selected.len().max(1) as f64,
        };
        let timer = tel.start();
        let d = params.len();
        let mut update = vec![0.0f64; d];
        for &i in &selection.selected {
            let w = selection.weights[i];
            let k = cohort.binary_search(&i).expect("selected index is in the cohort");
            for (u, &g) in update.iter_mut().zip(&uploads[k]) {
                *u += w * g as f64;
            }
        }
        let coef = -lr / denom;
        let update = update.into_iter().map(|u| (u * coef) as f32).collect();
        tel.stop(timer, "aggregate", round);
        (update, accepted_count)
    }

    /// Computes the round's server gradient from the auxiliary data
    /// (Algorithm 3 line 4) into `grad_buf`; returns its L2 norm when the
    /// cosine scoring rule needs it (0.0 otherwise).
    fn begin_round(&mut self, cfg: &SimulationConfig, params: &[f32]) -> f64 {
        self.server_model.set_params(params);
        let loss_fn = CrossEntropyLoss;
        self.server_model.batch_gradient_packed(
            &loss_fn,
            &self.aux.features,
            &self.aux.labels,
            &mut self.grad_buf,
        );
        if cfg.defense_cfg.scoring == ScoringRule::Cosine {
            vecops::l2_norm(&self.grad_buf)
        } else {
            0.0
        }
    }

    /// Completes a streamed round from the per-member fold results (in
    /// cohort order): bookkeeping, second-stage selection on the precomputed
    /// scores, and the (already lr-scaled) update from the retained
    /// survivors.
    ///
    /// Bit-parity with [`TwoStageState::step`] under
    /// [`UploadRetention::Exact`]:
    /// * per-upload verdicts and scores are pure functions of the upload
    ///   bits (`vecops::dot` accumulates in `f64` exactly like the
    ///   materialized `matvec_rows_f64`), so the shard merge — concatenation
    ///   in shard order — restores cohort order exactly and the result is
    ///   independent of thread count;
    /// * a rejected upload contributes the literal `+0.0` the materialized
    ///   path gets from scoring the zeroed vector, and skipping it in the
    ///   update sum skips only exact `+ w·0.0` terms (the `f64` accumulator
    ///   never holds `-0.0`, so those additions are bit-exact no-ops).
    fn finish_streaming(
        &mut self,
        cfg: &SimulationConfig,
        cohort: &[usize],
        folds: &[(f64, Retained, Option<CheckInfo>)],
        stats: &mut DefenseStats,
        lr: f64,
        mut metrics: Option<&mut RoundMetrics>,
    ) -> Vec<f32> {
        // Bookkeeping + full-length round scores, in cohort (= global index)
        // order. The telemetry counters accumulate in the same sequential
        // pass — after the shard merge, so they inherit its thread-count
        // independence.
        let mut round_scores = vec![0.0f64; self.second.accumulated_scores().len()];
        for (&i, (score, r, info)) in cohort.iter().zip(folds) {
            let rejected = matches!(r, Retained::Rejected);
            if rejected {
                if i < cfg.n_honest {
                    stats.first_stage_rejected_honest += 1;
                } else {
                    stats.first_stage_rejected_byzantine += 1;
                }
            }
            if let Some(m) = metrics.as_deref_mut() {
                note_stage1(m, *info, info.is_none() && rejected);
                match r {
                    Retained::Rejected => {}
                    Retained::Exact(g) => m.retained_exact_bytes += 4 * g.len() as u64,
                    Retained::Quantized(q) => m.retained_quantized_bytes += 4 + 2 * q.len() as u64,
                }
            }
            round_scores[i] = *score;
        }

        // Second stage on the precomputed scores.
        let selection = self.second.select_scored(cohort, round_scores);
        stats.total_selected += selection.selected.len() as u64;
        stats.byzantine_selected +=
            selection.selected.iter().filter(|&&i| i >= cfg.n_honest).count() as u64;
        if let Some(m) = metrics {
            for &i in cohort {
                m.scores.observe(selection.round_scores[i]);
            }
            m.selected = selection.selected.len() as u64;
        }

        // Model update from the retained survivors.
        let denom = match cfg.defense_cfg.step_normalization {
            StepNormalization::TotalWorkers => cohort.len() as f64,
            StepNormalization::SelectedCount => selection.selected.len().max(1) as f64,
        };
        let mut update = vec![0.0f64; self.grad_buf.len()];
        for &i in &selection.selected {
            let w = selection.weights[i];
            let k = cohort.binary_search(&i).expect("selected index is in the cohort");
            match &folds[k].1 {
                // The materialized sum adds `w·0.0` per coordinate here — a
                // bit-exact no-op on the f64 accumulator.
                Retained::Rejected => {}
                Retained::Exact(g) => {
                    for (u, &g) in update.iter_mut().zip(g) {
                        *u += w * g as f64;
                    }
                }
                Retained::Quantized(q) => {
                    for (u, g) in update.iter_mut().zip(q.iter()) {
                        *u += w * g as f64;
                    }
                }
            }
        }
        let coef = -lr / denom;
        update.into_iter().map(|u| (u * coef) as f32).collect()
    }
}

/// Folds one upload's first-stage outcome into the round's counters.
///
/// `info == None` means the stage never examined the upload: either the
/// first stage is ablated off (the upload was accepted wholesale) or the
/// upload never arrived (`dropped`). KS path counters only move for checks
/// that reached the KS test — an accept or a KS rejection.
fn note_stage1(m: &mut RoundMetrics, info: Option<CheckInfo>, dropped: bool) {
    let Some(ci) = info else {
        if dropped {
            m.rejected_dropped += 1;
        } else {
            m.accepted += 1;
        }
        return;
    };
    match ci.verdict {
        FirstStageVerdict::Accepted => m.accepted += 1,
        FirstStageVerdict::NonFinite => m.rejected_non_finite += 1,
        FirstStageVerdict::NormOutOfRange => m.rejected_norm += 1,
        FirstStageVerdict::KsRejected => m.rejected_ks += 1,
    }
    if matches!(ci.verdict, FirstStageVerdict::Accepted | FirstStageVerdict::KsRejected) {
        if ci.ks_exact {
            m.ks_exact_fallback += 1;
        } else {
            m.ks_fast_path += 1;
        }
    }
}

/// One upload through the streaming fold: first-stage filter, second-stage
/// score, retention. A pure function of the upload bits (plus the fixed
/// server gradient), which is what makes the shard merge order-insensitive —
/// the returned [`CheckInfo`] included, so per-shard telemetry partials merge
/// exactly like the fold itself.
pub(crate) fn fold_upload(
    first: &FirstStage,
    cfg: &SimulationConfig,
    mut upload: Vec<f32>,
    scratch: &mut KsScratch,
    server_grad: &[f32],
    server_grad_norm: f64,
) -> (f64, Retained, Option<CheckInfo>) {
    let info = if !cfg.defense_cfg.first_stage_enabled {
        None
    } else if !cfg.defense_cfg.ks_fast_path {
        Some(first.filter_reference_info(&mut upload))
    } else {
        Some(first.filter_with_info(&mut upload, scratch))
    };
    if !info.is_none_or(|i| i.verdict.is_accepted()) {
        // The materialized pipeline zeroes the upload and scores the zero
        // vector: exactly +0.0. Drop the bytes, keep the literal.
        return (0.0, Retained::Rejected, info);
    }
    let mut score = vecops::dot(&upload, server_grad);
    if cfg.defense_cfg.scoring == ScoringRule::Cosine {
        let na = vecops::l2_norm(&upload);
        score = if na == 0.0 || server_grad_norm == 0.0 {
            0.0
        } else {
            score / (na * server_grad_norm)
        };
    }
    if !score.is_finite() {
        score = 0.0;
    }
    let retained = match cfg.defense_cfg.retention {
        UploadRetention::Exact => Retained::Exact(upload),
        UploadRetention::Quantized => Retained::Quantized(QuantizedVec::encode(&upload)),
    };
    (score, retained, info)
}

/// One worker's protocol upload.
pub(crate) fn protocol_step(
    w: &mut DpWorker,
    params: &[f32],
    protocol: WorkerProtocol,
) -> Vec<f32> {
    match protocol {
        // Plain is Algorithm 1 with σ = 0: the worker's noise multiplier is
        // already zero for such runs.
        WorkerProtocol::PaperDp | WorkerProtocol::Plain => w.local_step(params),
        WorkerProtocol::ClippedDp { clip } => w.clipped_dp_step(params, clip),
        WorkerProtocol::SignDp { .. } => {
            unreachable!("sign-DP runs its own loop (run_sign_dp_simulation)")
        }
    }
}

/// Collects mutable references to the cohort's members of one worker pool.
///
/// `indices` are global worker indices, sorted ascending; `base` is the
/// global index of `workers[0]` (0 for the honest pool, `n_honest` for the
/// poisoned pool).
fn cohort_refs<'a>(
    workers: &'a mut [DpWorker],
    indices: &[usize],
    base: usize,
) -> Vec<&'a mut DpWorker> {
    let mut refs = Vec::with_capacity(indices.len());
    let mut rest = workers;
    let mut next = base;
    for &i in indices {
        let (_, tail) = rest.split_at_mut(i - next);
        let (w, tail) = tail.split_first_mut().expect("cohort index within worker range");
        refs.push(w);
        rest = tail;
        next = i + 1;
    }
    refs
}

/// Builds the ephemeral worker of client `index` for one round (on-demand
/// provisioning). The client's local shard is a pure function of the master
/// seed and its index — stable across rounds — while its per-round DP stream
/// is `worker_seed(worker_seed(seed, index), round)`; momentum starts cold
/// each participation.
pub(crate) fn on_demand_worker(
    cfg: &SimulationConfig,
    model: &Sequential,
    dp: &DpSgdConfig,
    index: usize,
    round: usize,
    flip: bool,
) -> DpWorker {
    let data_seed = worker_seed(cfg.seed.wrapping_add(0xda7a), index);
    let mut data = cfg.dataset.generate(cfg.per_worker, data_seed);
    if flip {
        flip_labels(&mut data);
    }
    DpWorker::new(model.clone(), data, dp.clone(), worker_seed(worker_seed(cfg.seed, index), round))
}
