//! Property-based tests for the statistical substrate.

use dpbfl_stats::chi_squared::ChiSquared;
use dpbfl_stats::kolmogorov::{kolmogorov_cdf, kolmogorov_sf};
use dpbfl_stats::ks::{ks_p_value, ks_test};
use dpbfl_stats::moments::RunningMoments;
use dpbfl_stats::normal::Normal;
use dpbfl_stats::special::{gamma_p, ln_gamma};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ks_statistic_is_in_unit_interval(
        samples in prop::collection::vec(0.0f64..1.0, 1..100)
    ) {
        let r = ks_test(&samples, |x| x.clamp(0.0, 1.0));
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn ks_statistic_is_permutation_invariant(
        mut samples in prop::collection::vec(-5.0f64..5.0, 2..50)
    ) {
        let n = Normal::STANDARD;
        let r1 = ks_test(&samples, |x| n.cdf(x));
        samples.reverse();
        let mid = samples.len() / 2;
        samples.swap(0, mid);
        let r2 = ks_test(&samples, |x| n.cdf(x));
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
    }

    #[test]
    fn ks_p_value_monotone_in_statistic(d1 in 0.01f64..0.5, d2 in 0.01f64..0.5, n in 5usize..500) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(ks_p_value(lo, n) >= ks_p_value(hi, n) - 1e-12);
    }

    #[test]
    fn kolmogorov_cdf_sf_are_complementary_and_monotone(a in 0.05f64..3.0, b in 0.05f64..3.0) {
        prop_assert!((kolmogorov_cdf(a) + kolmogorov_sf(a) - 1.0).abs() < 1e-9);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(kolmogorov_cdf(lo) <= kolmogorov_cdf(hi) + 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf(mean in -10.0f64..10.0, std in 0.1f64..10.0, p in 0.001f64..0.999) {
        let n = Normal::new(mean, std);
        prop_assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_is_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let n = Normal::new(0.0, 2.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-15);
    }

    #[test]
    fn chi_squared_cdf_properties(k in 0.5f64..100.0, x in 0.0f64..300.0) {
        let c = ChiSquared::new(k);
        let v = c.cdf(x);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!(c.cdf(x + 1.0) >= v - 1e-12);
    }

    #[test]
    fn gamma_p_bounded_and_monotone(a in 0.1f64..50.0, x in 0.0f64..200.0) {
        let v = gamma_p(a, x);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!(gamma_p(a, x + 0.5) >= v - 1e-12);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.1f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn welford_merge_is_order_independent(
        a in prop::collection::vec(-100.0f64..100.0, 1..40),
        b in prop::collection::vec(-100.0f64..100.0, 1..40)
    ) {
        let fold = |data: &[f64]| {
            let mut m = RunningMoments::new();
            for &x in data {
                m.push(x);
            }
            m
        };
        let mut ab = fold(&a);
        ab.merge(&fold(&b));
        let mut ba = fold(&b);
        ba.merge(&fold(&a));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7);
        prop_assert_eq!(ab.count(), ba.count());
    }
}
