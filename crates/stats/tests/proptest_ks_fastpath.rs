//! The decision-equivalence test campaign for the sort-free KS fast path.
//!
//! Two properties carry the whole contract:
//!
//! 1. The one-pass envelope always brackets the exact sorted statistic:
//!    `L ≤ D_n ≤ U`.
//! 2. The full fast-path decision (screen + sorted fallback) equals the
//!    reference decision `ks_test_gaussian(..).rejects_at(α)` — for benign
//!    Gaussian inputs, shifted means, inflated variances, heavy tails, and
//!    adversarial inputs constructed to land *inside* the critical band so
//!    the fallback branch is genuinely exercised.
//!
//! Sample counts cover the paper's operating points (`n = 25 450` — the MLP
//! dimension — plus 1 000 and the small-`n` exact-CDF regime at 16) and
//! significance levels {0.01, 0.05, 0.10}.

use dpbfl_stats::ks::{ks_test_gaussian, KsGaussianScreen, KsScratch, KsScreenVerdict};
use dpbfl_stats::normal::{gaussian_vector, Normal};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NS: [usize; 3] = [16, 1_000, 25_450];
const ALPHAS: [f64; 3] = [0.01, 0.05, 0.10];
const STD: f64 = 0.05; // the protocol's effective noise std (σ = 0.8, b_c = 16)

/// One input family per `kind`: null Gaussian, shifted mean, inflated
/// variance, heavy-tailed (Laplace with the null's variance).
fn family(kind: usize, n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind % 4 {
        0 => gaussian_vector(&mut rng, STD, n),
        1 => {
            let mut v = gaussian_vector(&mut rng, STD, n);
            // 0.15σ shift: around the detection threshold at large n, so
            // both decisions occur across seeds.
            for x in &mut v {
                *x += (0.15 * STD) as f32;
            }
            v
        }
        2 => gaussian_vector(&mut rng, 1.02 * STD, n),
        3 => {
            // Laplace(0, b) with b = σ/√2 has variance σ² but heavier tails.
            let b = STD / std::f64::consts::SQRT_2;
            (0..n)
                .map(|_| {
                    let u: f64 = rng.gen_range(-0.5..0.5);
                    let sign = if u < 0.0 { -1.0 } else { 1.0 };
                    (-b * sign * (1.0 - 2.0 * u.abs()).ln()) as f32
                })
                .collect()
        }
        _ => unreachable!(),
    }
}

/// Samples whose exact KS statistic is ≈ `d_target`: a perfect quantile grid
/// squeezed toward the distribution center by `δ` in probability space, so
/// `D_n = 1/(2n) + δ(1 − 1/n)` up to float rounding. Used to park inputs
/// right on the critical value.
fn squeezed_grid(n: usize, d_target: f64) -> Vec<f32> {
    let normal = Normal::new(0.0, STD);
    let delta = (d_target - 0.5 / n as f64) / (1.0 - 1.0 / n as f64);
    assert!(delta > 0.0 && delta < 0.5, "d_target {d_target} not constructible at n={n}");
    (1..=n)
        .map(|k| {
            let p = (k as f64 - 0.5) / n as f64;
            normal.quantile(p * (1.0 - 2.0 * delta) + delta) as f32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounds_bracket_the_exact_statistic(
        kind in 0usize..4,
        n_idx in 0usize..3,
        alpha_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let n = NS[n_idx];
        let alpha = ALPHAS[alpha_idx];
        let v = family(kind, n, seed);
        let screen = KsGaussianScreen::new(0.0, STD, n, alpha);
        let mut scratch = KsScratch::new();
        screen.bin_into(&v, &mut scratch.counts);
        let (lo, hi) = screen.bounds(&scratch.counts);
        let exact = ks_test_gaussian(&v, 0.0, STD).statistic;
        prop_assert!(lo <= exact + 1e-12, "kind {kind} n {n}: L={lo} > D={exact}");
        prop_assert!(exact <= hi + 1e-12, "kind {kind} n {n}: D={exact} > U={hi}");
        prop_assert!(lo <= hi + 1e-12);
    }

    #[test]
    fn fast_decision_equals_reference_decision(
        kind in 0usize..4,
        n_idx in 0usize..3,
        alpha_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let n = NS[n_idx];
        let alpha = ALPHAS[alpha_idx];
        let v = family(kind, n, seed);
        let screen = KsGaussianScreen::new(0.0, STD, n, alpha);
        let mut scratch = KsScratch::new();
        prop_assert_eq!(
            screen.rejects(&v, &mut scratch),
            ks_test_gaussian(&v, 0.0, STD).rejects_at(alpha),
            "kind {} n {} α {} seed {}", kind, n, alpha, seed
        );
    }

    #[test]
    fn critical_band_inputs_agree_with_reference(
        n_idx in 0usize..3,
        alpha_idx in 0usize..3,
        t in -1.0f64..1.0,
    ) {
        // Statistic targets sweeping ±12% around the critical value: some
        // land inside the envelope's undecidable band (fallback), some just
        // outside (screen decides); every one must match the reference.
        let n = NS[n_idx];
        let alpha = ALPHAS[alpha_idx];
        let screen = KsGaussianScreen::new(0.0, STD, n, alpha);
        let (d_accept, _) = screen.critical_band();
        let v = squeezed_grid(n, d_accept * (1.0 + 0.12 * t));
        let mut scratch = KsScratch::new();
        prop_assert_eq!(
            screen.rejects(&v, &mut scratch),
            ks_test_gaussian(&v, 0.0, STD).rejects_at(alpha),
            "n {} α {} t {}", n, alpha, t
        );
    }
}

/// The fallback branch is *provably* exercised: statistic parked exactly on
/// the critical value screens to `Borderline` at every operating point, and
/// the fallback decision still equals the reference.
#[test]
fn exactly_critical_inputs_take_the_sorted_fallback() {
    for &n in &NS {
        for &alpha in &ALPHAS {
            let screen = KsGaussianScreen::new(0.0, STD, n, alpha);
            let (d_accept, d_reject) = screen.critical_band();
            let v = squeezed_grid(n, 0.5 * (d_accept + d_reject));
            let mut scratch = KsScratch::new();
            assert_eq!(
                screen.screen(&v, &mut scratch),
                KsScreenVerdict::Borderline,
                "n {n} α {alpha}: critical input decided without sorting?!"
            );
            assert_eq!(
                screen.rejects(&v, &mut scratch),
                ks_test_gaussian(&v, 0.0, STD).rejects_at(alpha),
                "n {n} α {alpha}"
            );
        }
    }
}

/// Inputs far on either side of the critical value never fall back — the
/// whole point of the screen (and the property the benches assert at scale).
#[test]
fn clear_inputs_are_decided_without_sorting() {
    for &n in &[1_000usize, 25_450] {
        let screen = KsGaussianScreen::new(0.0, STD, n, 0.05);
        let (d_accept, d_reject) = screen.critical_band();
        let mut scratch = KsScratch::new();
        let clear_accept = squeezed_grid(n, d_accept * 0.3);
        assert_eq!(screen.screen(&clear_accept, &mut scratch), KsScreenVerdict::Accept, "n {n}");
        let clear_reject = squeezed_grid(n, (d_reject * 3.0).min(0.4));
        assert_eq!(screen.screen(&clear_reject, &mut scratch), KsScreenVerdict::Reject, "n {n}");
    }
}
