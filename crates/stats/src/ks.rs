//! One-sample Kolmogorov–Smirnov test.
//!
//! The server runs this test on every upload (paper §4.3, "KS test"): each of
//! the `d` coordinates is treated as a sample, the null hypothesis is that they
//! are drawn from `N(0, σ'²)`, and uploads whose P-value falls below the
//! significance level (0.05 in the paper) are rejected.

use crate::kolmogorov::{kolmogorov_sf, ks_cdf_exact};
use crate::normal::Normal;

/// Outcome of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup_x |C_n(x) − F(x)|`.
    pub statistic: f64,
    /// Two-sided P-value under the null.
    pub p_value: f64,
    /// Number of samples the statistic was computed from.
    pub n: usize,
}

impl KsResult {
    /// True iff the null hypothesis is rejected at significance `alpha`.
    #[inline]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// KS statistic of `sorted` (ascending) against the CDF `f`.
///
/// `D = max_k max( k/n − F(x_k), F(x_k) − (k−1)/n )`, the exact supremum of
/// the empirical-vs-theoretical CDF gap for a step empirical CDF.
pub fn ks_statistic_sorted(sorted: &[f64], f: impl Fn(f64) -> f64) -> f64 {
    assert!(!sorted.is_empty(), "KS statistic needs at least one sample");
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let fx = f(x);
        let upper = (i as f64 + 1.0) / n - fx;
        let lower = fx - (i as f64) / n;
        d = d.max(upper).max(lower);
    }
    d
}

/// Two-sided P-value for a KS statistic `d` from `n` samples.
///
/// Uses the Marsaglia–Tsang–Wang exact CDF for `n ≤ 140` and the asymptotic
/// Kolmogorov distribution with Stephens' finite-`n` correction
/// `λ = (√n + 0.12 + 0.11/√n)·d` otherwise — the same strategy as SciPy's
/// `kstest(mode="approx")` and Numerical Recipes.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    assert!(n >= 1);
    if d <= 0.0 {
        return 1.0;
    }
    if d >= 1.0 {
        return 0.0;
    }
    if n <= 140 {
        (1.0 - ks_cdf_exact(n, d)).clamp(0.0, 1.0)
    } else {
        let sqrt_n = (n as f64).sqrt();
        let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
        kolmogorov_sf(lambda)
    }
}

/// One-sample KS test of `samples` (any order; a sorted copy is made) against
/// an arbitrary continuous CDF.
pub fn ks_test(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in KS samples"));
    let statistic = ks_statistic_sorted(&sorted, cdf);
    KsResult { statistic, p_value: ks_p_value(statistic, samples.len()), n: samples.len() }
}

/// KS test of `f32` samples against `N(mean, std²)`.
///
/// This is the protocol's exact server-side operation: upload coordinates are
/// `f32`, the reference distribution is the DP noise distribution. Sorting is
/// done on the `f32`s (cheaper) and the CDF is evaluated in `f64`.
pub fn ks_test_gaussian(samples: &[f32], mean: f64, std: f64) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    let normal = Normal::new(mean, std);
    let mut sorted: Vec<f32> = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in KS samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let fx = normal.cdf(x as f64);
        let upper = (i as f64 + 1.0) / n - fx;
        let lower = fx - (i as f64) / n;
        d = d.max(upper).max(lower);
    }
    KsResult { statistic: d, p_value: ks_p_value(d, sorted.len()), n: sorted.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::gaussian_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statistic_of_perfect_uniform_grid() {
        // Samples at the midpoints of n equal bins: D = 1/(2n).
        let n = 10;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_sorted(&samples, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.05).abs() < 1e-12);
    }

    #[test]
    fn statistic_detects_gross_mismatch() {
        // All samples at 0.99 against Uniform(0,1): D ≈ 0.99.
        let samples = vec![0.99f64; 50];
        let d = ks_statistic_sorted(&samples, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.98);
        assert!(ks_p_value(d, 50) < 1e-10);
    }

    #[test]
    fn gaussian_null_is_accepted() {
        // Genuine N(0, σ²) samples at protocol scale must pass at α = 0.05
        // in the overwhelming majority of draws. Check several seeds.
        let mut rejections = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = gaussian_vector(&mut rng, 0.05, 25_450);
            let r = ks_test_gaussian(&v, 0.0, 0.05);
            if r.rejects_at(0.05) {
                rejections += 1;
            }
        }
        // Expected ~1 rejection in 20 under the null; 5+ would be suspicious.
        assert!(rejections <= 4, "rejected {rejections}/20 genuine Gaussian uploads");
    }

    #[test]
    fn wrong_variance_is_rejected() {
        // N(0, (2σ)²) against N(0, σ²): wrong scale must be caught at d=25450.
        let mut rng = StdRng::seed_from_u64(3);
        let v = gaussian_vector(&mut rng, 0.10, 25_450);
        let r = ks_test_gaussian(&v, 0.0, 0.05);
        assert!(r.rejects_at(0.05), "p={}", r.p_value);
    }

    #[test]
    fn shifted_mean_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = gaussian_vector(&mut rng, 0.05, 25_450);
        for x in &mut v {
            *x += 0.01; // 0.2σ shift
        }
        let r = ks_test_gaussian(&v, 0.0, 0.05);
        assert!(r.rejects_at(0.05), "p={}", r.p_value);
    }

    #[test]
    fn p_value_uniform_under_null_small_n() {
        // With the exact small-n CDF, the p-value of a uniform sample should
        // itself be roughly uniform; check its mean over many draws.
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        let reps = 400;
        for _ in 0..reps {
            let samples: Vec<f64> =
                (0..25).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect();
            let r = ks_test(&samples, |x: f64| x.clamp(0.0, 1.0));
            acc += r.p_value;
        }
        let mean_p = acc / reps as f64;
        assert!((mean_p - 0.5).abs() < 0.06, "mean p under null = {mean_p}");
    }

    #[test]
    fn p_value_edge_cases() {
        assert_eq!(ks_p_value(0.0, 100), 1.0);
        assert_eq!(ks_p_value(1.0, 100), 0.0);
        assert!(ks_p_value(0.5, 10) > ks_p_value(0.5, 1000));
    }
}
