//! One-sample Kolmogorov–Smirnov test, plus a sort-free decision screen.
//!
//! The server runs this test on every upload (paper §4.3, "KS test"): each of
//! the `d` coordinates is treated as a sample, the null hypothesis is that they
//! are drawn from `N(0, σ'²)`, and uploads whose P-value falls below the
//! significance level (0.05 in the paper) are rejected.
//!
//! ## The sort-free fast path
//!
//! Computing the exact statistic `D_n` costs a full `O(d log d)` sort per
//! upload — the dominant server-side cost at `d ≈ 25 450`. But the defense
//! only consumes the accept/reject *decision*, not `D_n` itself, and the
//! decision is a threshold test: reject iff `p(D_n) < α`. [`KsGaussianScreen`]
//! therefore brackets `D_n` from both sides in one `O(d)` pass:
//!
//! 1. The real line is cut into `B` equal-width buckets spanning `μ ± 5σ`
//!    (plus two open tail buckets); one pass counts samples per bucket.
//! 2. At every bucket boundary `t_j` the empirical CDF is known *exactly*
//!    from the cumulative counts (`N_j/n` with `N_j = #{x < t_j}`), so
//!    `L = max_j |N_j/n − F(t_j)|` is a lower bound on `D_n`.
//! 3. Inside a bucket `[t_j, t_{j+1})` both CDFs are monotone, so
//!    `U = max_j max(N_{j+1}/n − F(t_j), F(t_{j+1}) − N_j/n)` (with the two
//!    tail intervals handled against 0 and 1) is an upper bound.
//!
//! `L ≤ D_n ≤ U`, with `U − L` on the order of the largest per-bucket
//! probability mass — far narrower than the distance of a typical upload's
//! `D_n` from the critical value. The screen compares the bounds against two
//! pre-verified statistic thresholds and answers `Accept`, `Reject`, or
//! `Borderline`; only borderline uploads (the critical band) fall back to the
//! exact sorted test.
//!
//! ### Why the decisions are bit-identical to the sorted test
//!
//! The contract is *decision* equivalence, not statistic equivalence. The
//! screen never decides from an approximation of `p(D_n)`; it decides only
//! when the decision is provably forced:
//!
//! * At construction, bisection finds `d_accept ≤ d_reject` such that
//!   `ks_p_value(d_accept, n) ≥ α + 2ε_p` and `ks_p_value(d_reject, n) <
//!   α − 2ε_p` hold **by direct evaluation** (no monotonicity of the
//!   implementation is assumed; the inequalities are re-checked on the
//!   returned values).
//! * `Reject` is answered only when `L − ε_s ≥ d_reject`: then
//!   `D_n ≥ d_reject`, so the true (mathematically monotone) p-value
//!   satisfies `p(D_n) ≤ p(d_reject) < α − ε_p`, and any implementation
//!   within `ε_p` of the true p-value — ours is within ~1e−15 — reports
//!   `p < α`. `Accept` is the mirror image via `U + ε_s ≤ d_accept`.
//! * `ε_s = 1e−9` absorbs every floating-point discrepancy between the
//!   bound arithmetic and the sorted statistic (boundary rounding in the
//!   bucket map, CDF evaluation at boundaries vs samples — all ≤ ~1e−15).
//! * Everything else is `Borderline` and runs the exact sorted test, which
//!   is the reference implementation itself.
//!
//! The margins are ~1e−9 wide in a band whose width is ~1e−3, so they cost
//! essentially no fast-path coverage.

use crate::kolmogorov::{kolmogorov_sf, ks_cdf_exact};
use crate::normal::Normal;

/// Outcome of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup_x |C_n(x) − F(x)|`.
    pub statistic: f64,
    /// Two-sided P-value under the null.
    pub p_value: f64,
    /// Number of samples the statistic was computed from.
    pub n: usize,
}

impl KsResult {
    /// True iff the null hypothesis is rejected at significance `alpha`.
    #[inline]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// KS statistic of `sorted` (ascending) against the CDF `f`.
///
/// `D = max_k max( k/n − F(x_k), F(x_k) − (k−1)/n )`, the exact supremum of
/// the empirical-vs-theoretical CDF gap for a step empirical CDF.
pub fn ks_statistic_sorted(sorted: &[f64], f: impl Fn(f64) -> f64) -> f64 {
    assert!(!sorted.is_empty(), "KS statistic needs at least one sample");
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let fx = f(x);
        let upper = (i as f64 + 1.0) / n - fx;
        let lower = fx - (i as f64) / n;
        d = d.max(upper).max(lower);
    }
    d
}

/// Two-sided P-value for a KS statistic `d` from `n` samples.
///
/// Uses the Marsaglia–Tsang–Wang exact CDF for `n ≤ 140` and the asymptotic
/// Kolmogorov distribution with Stephens' finite-`n` correction
/// `λ = (√n + 0.12 + 0.11/√n)·d` otherwise — the same strategy as SciPy's
/// `kstest(mode="approx")` and Numerical Recipes.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    assert!(n >= 1);
    if d <= 0.0 {
        return 1.0;
    }
    if d >= 1.0 {
        return 0.0;
    }
    if n <= 140 {
        (1.0 - ks_cdf_exact(n, d)).clamp(0.0, 1.0)
    } else {
        let sqrt_n = (n as f64).sqrt();
        let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
        kolmogorov_sf(lambda)
    }
}

/// One-sample KS test of `samples` (any order; a sorted copy is made) against
/// an arbitrary continuous CDF.
pub fn ks_test(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in KS samples"));
    let statistic = ks_statistic_sorted(&sorted, cdf);
    KsResult { statistic, p_value: ks_p_value(statistic, samples.len()), n: samples.len() }
}

/// KS test of `f32` samples against `N(mean, std²)`.
///
/// This is the protocol's exact server-side operation: upload coordinates are
/// `f32`, the reference distribution is the DP noise distribution. Sorting is
/// done on the `f32`s (cheaper) and the CDF is evaluated in `f64`.
///
/// This is the **reference implementation** the sort-free
/// [`KsGaussianScreen`] is contractually decision-equivalent to.
pub fn ks_test_gaussian(samples: &[f32], mean: f64, std: f64) -> KsResult {
    ks_test_gaussian_with(samples, mean, std, &mut Vec::new())
}

/// [`ks_test_gaussian`] writing its sorted copy into a caller-owned buffer.
///
/// The numeric path is byte-for-byte the same computation (same sort, same
/// accumulation order), so results are bit-identical to the allocating
/// variant; the buffer lets hot paths reuse one allocation across uploads.
pub fn ks_test_gaussian_with(
    samples: &[f32],
    mean: f64,
    std: f64,
    sorted: &mut Vec<f32>,
) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    let normal = Normal::new(mean, std);
    sorted.clear();
    sorted.extend_from_slice(samples);
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in KS samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let fx = normal.cdf(x as f64);
        let upper = (i as f64 + 1.0) / n - fx;
        let lower = fx - (i as f64) / n;
        d = d.max(upper).max(lower);
    }
    KsResult { statistic: d, p_value: ks_p_value(d, sorted.len()), n: sorted.len() }
}

/// Answer of the one-pass screen for one sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsScreenVerdict {
    /// The upper bound on `D_n` is decisively below the critical value: the
    /// exact test would accept.
    Accept,
    /// The lower bound on `D_n` is decisively above the critical value: the
    /// exact test would reject.
    Reject,
    /// The bounds straddle the critical band — only the exact sorted test
    /// can decide.
    Borderline,
}

/// Reusable buffers for the screen-then-fallback pipeline: the histogram of
/// the one-pass screen and the sort buffer of the exact fallback. One per
/// worker/task; contents never influence results (both are fully rewritten
/// per use).
#[derive(Debug, Clone, Default)]
pub struct KsScratch {
    /// Bucket counts for [`KsGaussianScreen::bin_into`].
    pub counts: Vec<u32>,
    /// Sort buffer for [`ks_test_gaussian_with`] and
    /// [`KsGaussianScreen::exact_from_counts`].
    pub sorted: Vec<f32>,
    /// Per-bucket write cursors for the counting-sort fallback
    /// ([`KsGaussianScreen::exact_from_counts`]).
    pub offsets: Vec<u32>,
}

impl KsScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Slack, in statistic units, absorbing every floating-point discrepancy
/// between the one-pass bound arithmetic and the exact sorted statistic
/// (individual discrepancies are ≤ ~1e−15; see the module docs).
const STAT_GUARD: f64 = 1e-9;

/// p-value margin the decision thresholds are verified against: twice the
/// assumed `|p_impl − p_true| ≤ 1e−9` evaluation error (true error ~1e−15).
const P_MARGIN: f64 = 2e-9;

/// Sort-free screen for the one-sample KS test against `N(mean, std²)`.
///
/// Built once per `(mean, std, n, α)`; [`KsGaussianScreen::screen`] then
/// decides most sample sets in `O(n)` without sorting, answering
/// [`KsScreenVerdict::Borderline`] exactly when the one-pass bounds cannot
/// force the decision (see the module docs for the equivalence argument).
#[derive(Debug, Clone)]
pub struct KsGaussianScreen {
    mean: f64,
    std: f64,
    n: usize,
    alpha: f64,
    x_lo: f64,
    inv_w: f64,
    buckets: usize,
    /// `cdf(t_j)` at the `buckets + 1` bucket boundaries.
    cdf_at: Vec<f64>,
    /// Verified: `ks_p_value(d_accept, n) ≥ α + P_MARGIN`.
    d_accept: f64,
    /// Verified: `ks_p_value(d_reject, n) < α − P_MARGIN`.
    d_reject: f64,
}

impl KsGaussianScreen {
    /// Builds the screen for `n` samples at significance `alpha`.
    ///
    /// The bucket count scales with `n` (64 – 8192, power of two): below
    /// `n` buckets the envelope would be needlessly wide, beyond ~8k the
    /// per-upload zeroing cost stops paying for the narrower band.
    ///
    /// Any `alpha` is accepted: for degenerate values (≤ 0, ≥ 1, or within
    /// the verification margin of them) the unverifiable fast-decision
    /// side(s) are simply disabled and those inputs fall through to the
    /// exact sorted test, keeping decisions exact instead of panicking.
    pub fn new(mean: f64, std: f64, n: usize, alpha: f64) -> Self {
        assert!(std > 0.0 && std.is_finite(), "screen needs a positive finite std, got {std}");
        assert!(n >= 1, "screen needs at least one sample");
        let buckets = n.next_power_of_two().clamp(64, 8192);
        // ±5σ spans all but ~6e-7 of the null mass; samples beyond it land
        // in the open tail buckets, whose envelope contribution is tiny.
        const SPAN_STDS: f64 = 5.0;
        let x_lo = mean - SPAN_STDS * std;
        let width = 2.0 * SPAN_STDS * std / buckets as f64;
        let normal = Normal::new(mean, std);
        let cdf_at: Vec<f64> = (0..=buckets).map(|j| normal.cdf(x_lo + j as f64 * width)).collect();
        let (d_accept, d_reject) = decision_thresholds(n, alpha);
        KsGaussianScreen {
            mean,
            std,
            n,
            alpha,
            x_lo,
            inv_w: 1.0 / width,
            buckets,
            cdf_at,
            d_accept,
            d_reject,
        }
    }

    /// Number of samples the screen was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The significance level decisions are made at.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Length a counts buffer must have: interior buckets plus the two
    /// open tails.
    #[inline]
    pub fn slots(&self) -> usize {
        self.buckets + 2
    }

    /// The `(d_accept, d_reject)` statistic thresholds: `D_n ≤ d_accept`
    /// forces acceptance, `D_n ≥ d_reject` forces rejection, and the band
    /// between them (~1e−9 wide) is undecidable without the exact test.
    pub fn critical_band(&self) -> (f64, f64) {
        (self.d_accept, self.d_reject)
    }

    /// Bucket index of one sample (0 = below-range tail, `slots() − 1` =
    /// above-range tail, which also absorbs NaN).
    ///
    /// The map is monotone in `x`, which is all the envelope argument needs:
    /// the effective boundaries it induces differ from the nominal `t_j` by
    /// at most a few ulps, covered by the `STAT_GUARD` margin.
    #[inline]
    pub fn bucket_of(&self, x: f32) -> usize {
        let z = (x as f64 - self.x_lo) * self.inv_w;
        if z >= 0.0 && z < self.buckets as f64 {
            z as usize + 1
        } else if z < 0.0 {
            0
        } else {
            self.buckets + 1
        }
    }

    /// One pass: histogram `samples` into `counts` (resized and zeroed).
    pub fn bin_into(&self, samples: &[f32], counts: &mut Vec<u32>) {
        counts.clear();
        counts.resize(self.slots(), 0);
        for &x in samples {
            counts[self.bucket_of(x)] += 1;
        }
    }

    /// `(L, U)` with `L ≤ D_n ≤ U` for the sample set behind `counts`
    /// (no guards applied; the raw envelope, exposed for the property-test
    /// campaign).
    pub fn bounds(&self, counts: &[u32]) -> (f64, f64) {
        let (lower, upper, _) = self.scan(counts, f64::INFINITY);
        (lower, upper)
    }

    /// Decides from a filled histogram. Early-exits mid-scan as soon as the
    /// running lower bound alone forces rejection.
    pub fn decide(&self, counts: &[u32]) -> KsScreenVerdict {
        let (_, upper, rejected) = self.scan(counts, self.d_reject + STAT_GUARD);
        if rejected {
            return KsScreenVerdict::Reject;
        }
        if upper + STAT_GUARD <= self.d_accept {
            KsScreenVerdict::Accept
        } else {
            KsScreenVerdict::Borderline
        }
    }

    /// Bins and decides in one call.
    ///
    /// Samples must be finite: the screen would bin NaN/±∞ into the upper
    /// tail bucket and decide from a corrupted histogram (callers like
    /// `FirstStage` reject non-finite uploads before any KS work; the
    /// reference [`ks_test_gaussian`] panics on NaN instead).
    pub fn screen(&self, samples: &[f32], scratch: &mut KsScratch) -> KsScreenVerdict {
        assert_eq!(samples.len(), self.n, "sample count differs from the screen's n");
        self.bin_into(samples, &mut scratch.counts);
        self.decide(&scratch.counts)
    }

    /// The full fast-path decision: screen, then exact fallback for
    /// borderline inputs. For finite samples (see [`KsGaussianScreen::screen`]
    /// for the NaN carve-out) this returns exactly
    /// `ks_test_gaussian(samples, mean, std).rejects_at(alpha)`.
    ///
    /// The fallback is the counting-sort variant
    /// ([`KsGaussianScreen::exact_from_counts`]): `screen` has already built
    /// the bucket histogram, so the exact test reuses it instead of paying a
    /// full comparison sort. Its result is bit-identical to
    /// [`ks_test_gaussian_with`].
    pub fn rejects(&self, samples: &[f32], scratch: &mut KsScratch) -> bool {
        match self.screen(samples, scratch) {
            KsScreenVerdict::Reject => true,
            KsScreenVerdict::Accept => false,
            KsScreenVerdict::Borderline => {
                self.exact_from_counts(samples, scratch).rejects_at(self.alpha)
            }
        }
    }

    /// The exact KS test, fed by a counting sort from the already-built
    /// bucket histogram: `scratch.counts` must hold the histogram
    /// [`KsGaussianScreen::bin_into`] built for exactly these `samples`
    /// (that is the state the screen leaves behind when it answers
    /// [`KsScreenVerdict::Borderline`]).
    ///
    /// An exclusive prefix sum over the counts yields each bucket's slice of
    /// the sorted order; one scatter pass places every sample in its bucket's
    /// slice and a per-bucket `sort_unstable` finishes the job. Because
    /// [`KsGaussianScreen::bucket_of`] is monotone, the concatenation is the
    /// same ascending sequence the global sort produces (the only equal-value
    /// bit patterns, ±0.0, share a bucket and a CDF value), and the statistic
    /// loop below is byte-for-byte the reference computation — so the
    /// returned [`KsResult`] is bit-identical to [`ks_test_gaussian_with`],
    /// at `O(d + B log(d/B))` instead of `O(d log d)`.
    pub fn exact_from_counts(&self, samples: &[f32], scratch: &mut KsScratch) -> KsResult {
        assert_eq!(samples.len(), self.n, "sample count differs from the screen's n");
        assert_eq!(scratch.counts.len(), self.slots(), "counts buffer has the wrong bucket count");
        let offsets = &mut scratch.offsets;
        offsets.clear();
        let mut acc = 0u32;
        for &c in &scratch.counts {
            offsets.push(acc);
            acc += c;
        }
        assert_eq!(acc as usize, samples.len(), "histogram does not cover the samples");
        let sorted = &mut scratch.sorted;
        sorted.clear();
        sorted.resize(samples.len(), 0.0);
        for &x in samples {
            let b = self.bucket_of(x);
            sorted[offsets[b] as usize] = x;
            offsets[b] += 1;
        }
        // After the scatter, offsets[b] is the end of bucket b's slice.
        let mut start = 0usize;
        for &end in offsets.iter() {
            sorted[start..end as usize]
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in KS samples"));
            start = end as usize;
        }
        let n = sorted.len() as f64;
        let normal = Normal::new(self.mean, self.std);
        let mut d = 0.0f64;
        for (i, &x) in sorted.iter().enumerate() {
            let fx = normal.cdf(x as f64);
            let upper = (i as f64 + 1.0) / n - fx;
            let lower = fx - (i as f64) / n;
            d = d.max(upper).max(lower);
        }
        KsResult { statistic: d, p_value: ks_p_value(d, sorted.len()), n: sorted.len() }
    }

    /// The bracketing pass: returns `(L, U, early_rejected)`, aborting with
    /// `early_rejected = true` the moment a lower-bound candidate reaches
    /// `reject_at` (pass `f64::INFINITY` to always complete).
    fn scan(&self, counts: &[u32], reject_at: f64) -> (f64, f64, bool) {
        assert_eq!(counts.len(), self.slots(), "counts buffer has the wrong bucket count");
        let n = self.n as f64;
        // Interval (−∞, t_0): F_n ∈ [0, N_0/n], F ∈ (0, f_0).
        let mut cum = counts[0] as f64;
        let mut lower = (cum / n - self.cdf_at[0]).abs();
        let mut upper = (cum / n).max(self.cdf_at[0]);
        if lower >= reject_at {
            return (lower, upper, true);
        }
        for (&count, boundary_pair) in counts[1..=self.buckets].iter().zip(self.cdf_at.windows(2)) {
            let prev_cum = cum;
            cum += count as f64;
            let [f_prev, f_j] = boundary_pair else { unreachable!("windows(2)") };
            let (f_prev, f_j) = (*f_prev, *f_j);
            // Boundary t_j: the empirical CDF is exactly cum/n there.
            let l = (cum / n - f_j).abs();
            if l > lower {
                lower = l;
                if lower >= reject_at {
                    return (lower, upper, true);
                }
            }
            // Interval [t_{j−1}, t_j): F_n ∈ [prev_cum/n, cum/n], F ∈ [f_prev, f_j].
            let u = (cum / n - f_prev).max(f_j - prev_cum / n);
            if u > upper {
                upper = u;
            }
        }
        // Interval [t_B, ∞): F_n ∈ [cum/n, 1], F ∈ [f_B, 1).
        let u = (1.0 - self.cdf_at[self.buckets]).max(1.0 - cum / n);
        if u > upper {
            upper = u;
        }
        (lower, upper, false)
    }
}

/// `(d_accept, d_reject)` for `(n, alpha)`: statistic thresholds whose
/// defining inequalities (`p(d_accept) ≥ α + P_MARGIN`,
/// `p(d_reject) < α − P_MARGIN`) hold by direct evaluation of
/// [`ks_p_value`] — bisection only *locates* the candidates, it is never
/// trusted; each step outward re-verifies, so no monotonicity of the
/// p-value implementation is assumed anywhere.
///
/// A side whose inequality cannot be verified (degenerate `alpha` at or
/// beyond the edges of `(0, 1)`, where e.g. `p ≥ α + margin` is
/// unsatisfiable) is disabled with an unreachable sentinel (`−∞` for
/// accept, `+∞` for reject): the screen then answers `Borderline` in that
/// direction and the sorted fallback keeps decisions exact.
fn decision_thresholds(n: usize, alpha: f64) -> (f64, f64) {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if ks_p_value(mid, n) >= alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Walk outward geometrically until the margined inequality is verified
    // (p(0) = 1 and p(1) = 0 satisfy the conditions for any non-degenerate
    // alpha well before the step bound).
    let mut d_accept = f64::NEG_INFINITY;
    let mut candidate = lo;
    let mut step = 1e-15;
    for _ in 0..120 {
        if ks_p_value(candidate, n) >= alpha + P_MARGIN {
            d_accept = candidate;
            break;
        }
        candidate = (candidate - step).max(0.0);
        step *= 4.0;
    }
    let mut d_reject = f64::INFINITY;
    let mut candidate = hi;
    let mut step = 1e-15;
    for _ in 0..120 {
        if ks_p_value(candidate, n) < alpha - P_MARGIN {
            d_reject = candidate;
            break;
        }
        candidate = (candidate + step).min(1.0);
        step *= 4.0;
    }
    (d_accept, d_reject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::gaussian_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statistic_of_perfect_uniform_grid() {
        // Samples at the midpoints of n equal bins: D = 1/(2n).
        let n = 10;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_sorted(&samples, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.05).abs() < 1e-12);
    }

    #[test]
    fn statistic_detects_gross_mismatch() {
        // All samples at 0.99 against Uniform(0,1): D ≈ 0.99.
        let samples = vec![0.99f64; 50];
        let d = ks_statistic_sorted(&samples, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.98);
        assert!(ks_p_value(d, 50) < 1e-10);
    }

    #[test]
    fn gaussian_null_is_accepted() {
        // Genuine N(0, σ²) samples at protocol scale must pass at α = 0.05
        // in the overwhelming majority of draws. Check several seeds.
        let mut rejections = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = gaussian_vector(&mut rng, 0.05, 25_450);
            let r = ks_test_gaussian(&v, 0.0, 0.05);
            if r.rejects_at(0.05) {
                rejections += 1;
            }
        }
        // Expected ~1 rejection in 20 under the null; 5+ would be suspicious.
        assert!(rejections <= 4, "rejected {rejections}/20 genuine Gaussian uploads");
    }

    #[test]
    fn wrong_variance_is_rejected() {
        // N(0, (2σ)²) against N(0, σ²): wrong scale must be caught at d=25450.
        let mut rng = StdRng::seed_from_u64(3);
        let v = gaussian_vector(&mut rng, 0.10, 25_450);
        let r = ks_test_gaussian(&v, 0.0, 0.05);
        assert!(r.rejects_at(0.05), "p={}", r.p_value);
    }

    #[test]
    fn shifted_mean_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = gaussian_vector(&mut rng, 0.05, 25_450);
        for x in &mut v {
            *x += 0.01; // 0.2σ shift
        }
        let r = ks_test_gaussian(&v, 0.0, 0.05);
        assert!(r.rejects_at(0.05), "p={}", r.p_value);
    }

    #[test]
    fn p_value_uniform_under_null_small_n() {
        // With the exact small-n CDF, the p-value of a uniform sample should
        // itself be roughly uniform; check its mean over many draws.
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        let reps = 400;
        for _ in 0..reps {
            let samples: Vec<f64> =
                (0..25).map(|_| rand::Rng::gen_range(&mut rng, 0.0..1.0)).collect();
            let r = ks_test(&samples, |x: f64| x.clamp(0.0, 1.0));
            acc += r.p_value;
        }
        let mean_p = acc / reps as f64;
        assert!((mean_p - 0.5).abs() < 0.06, "mean p under null = {mean_p}");
    }

    #[test]
    fn p_value_edge_cases() {
        assert_eq!(ks_p_value(0.0, 100), 1.0);
        assert_eq!(ks_p_value(1.0, 100), 0.0);
        assert!(ks_p_value(0.5, 10) > ks_p_value(0.5, 1000));
    }

    #[test]
    fn buffered_test_is_bit_identical_to_allocating_test() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = gaussian_vector(&mut rng, 0.05, 4_000);
        let a = ks_test_gaussian(&v, 0.0, 0.05);
        let mut buf = vec![9.0f32; 3]; // stale contents must not matter
        let b = ks_test_gaussian_with(&v, 0.0, 0.05, &mut buf);
        assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
        assert_eq!(buf.len(), v.len());
    }

    #[test]
    fn decision_thresholds_are_verified_and_ordered() {
        for &n in &[16usize, 140, 1_000, 25_450] {
            for &alpha in &[0.01, 0.05, 0.10] {
                let screen = KsGaussianScreen::new(0.0, 1.0, n, alpha);
                let (d_accept, d_reject) = screen.critical_band();
                assert!(d_accept <= d_reject, "n={n} α={alpha}");
                assert!(ks_p_value(d_accept, n) >= alpha + 2e-9, "n={n} α={alpha}");
                assert!(ks_p_value(d_reject, n) < alpha - 2e-9, "n={n} α={alpha}");
                // The band is a hair around the critical point, not a chasm.
                assert!(d_reject - d_accept < 1e-6, "n={n} α={alpha}");
            }
        }
    }

    #[test]
    fn degenerate_alphas_disable_fast_sides_instead_of_panicking() {
        // α at or beyond the edges of (0, 1) was always legal for the
        // reference test (`rejects_at` is just a comparison); the screen
        // must keep accepting such values and stay decision-equivalent by
        // disabling the unverifiable fast side(s).
        let mut rng = StdRng::seed_from_u64(5);
        let v = gaussian_vector(&mut rng, 0.05, 1_000);
        let mut scratch = KsScratch::new();
        for &alpha in &[0.0, 1e-9, 0.999_999_999, 1.0, 2.0] {
            let screen = KsGaussianScreen::new(0.0, 0.05, 1_000, alpha);
            let (d_accept, d_reject) = screen.critical_band();
            assert!(d_accept <= d_reject, "α={alpha}");
            assert_eq!(
                screen.rejects(&v, &mut scratch),
                ks_test_gaussian(&v, 0.0, 0.05).rejects_at(alpha),
                "α={alpha}"
            );
        }
    }

    #[test]
    fn screen_bounds_bracket_the_exact_statistic() {
        let screen = KsGaussianScreen::new(0.0, 0.05, 25_450, 0.05);
        let mut scratch = KsScratch::new();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v = gaussian_vector(&mut rng, 0.05, 25_450);
            if seed % 2 == 0 {
                for x in &mut v {
                    *x += 0.004; // push some inputs toward rejection
                }
            }
            screen.bin_into(&v, &mut scratch.counts);
            let (lo, hi) = screen.bounds(&scratch.counts);
            let exact = ks_test_gaussian(&v, 0.0, 0.05).statistic;
            assert!(lo <= exact + 1e-12, "seed {seed}: L={lo} > D={exact}");
            assert!(exact <= hi + 1e-12, "seed {seed}: D={exact} > U={hi}");
        }
    }

    #[test]
    fn screen_decisions_match_reference_on_clear_inputs() {
        let screen = KsGaussianScreen::new(0.0, 0.05, 25_450, 0.05);
        let mut scratch = KsScratch::new();
        let mut rng = StdRng::seed_from_u64(3);
        // Genuine noise: screens to a definitive verdict on most draws and
        // the full decision always matches the reference.
        let mut definitive = 0;
        for _ in 0..20 {
            let v = gaussian_vector(&mut rng, 0.05, 25_450);
            if screen.screen(&v, &mut scratch) != KsScreenVerdict::Borderline {
                definitive += 1;
            }
            assert_eq!(
                screen.rejects(&v, &mut scratch),
                ks_test_gaussian(&v, 0.0, 0.05).rejects_at(0.05)
            );
        }
        assert!(definitive >= 14, "only {definitive}/20 decided without sorting");
        // A grossly wrong distribution early-exits to Reject.
        let v = gaussian_vector(&mut rng, 0.10, 25_450);
        assert_eq!(screen.screen(&v, &mut scratch), KsScreenVerdict::Reject);
        assert!(screen.rejects(&v, &mut scratch));
    }

    #[test]
    fn counting_sort_exact_test_is_bit_identical_to_sorted_reference() {
        // The counting-sort fallback must reproduce the reference KsResult
        // bit-for-bit: same statistic bits, same p-value bits — across null
        // draws, shifted inputs, tail-heavy inputs, and ±0.0 ties (the only
        // equal-comparing f32 pair with distinct bit patterns).
        let mut scratch = KsScratch::new();
        for (case, n) in [(0, 64usize), (1, 1_000), (2, 25_450), (3, 128)] {
            let screen = KsGaussianScreen::new(0.0, 0.05, n, 0.05);
            let mut rng = StdRng::seed_from_u64(case as u64);
            let mut v = gaussian_vector(&mut rng, 0.05, n);
            match case {
                1 => {
                    for x in &mut v {
                        *x += 0.004;
                    }
                }
                2 => {
                    v[0] = 100.0; // far-tail bucket
                    v[1] = -100.0;
                }
                3 => {
                    // Interleave ±0.0 ties among genuine samples.
                    for (i, x) in v.iter_mut().enumerate().take(32) {
                        *x = if i % 2 == 0 { 0.0 } else { -0.0 };
                    }
                }
                _ => {}
            }
            screen.bin_into(&v, &mut scratch.counts);
            let fast = screen.exact_from_counts(&v, &mut scratch);
            let reference = ks_test_gaussian(&v, 0.0, 0.05);
            assert_eq!(fast.statistic.to_bits(), reference.statistic.to_bits(), "case {case}");
            assert_eq!(fast.p_value.to_bits(), reference.p_value.to_bits(), "case {case}");
            assert_eq!(fast.n, reference.n, "case {case}");
        }
    }

    #[test]
    fn screen_handles_tail_and_degenerate_inputs() {
        let screen = KsGaussianScreen::new(0.0, 1.0, 64, 0.05);
        let mut scratch = KsScratch::new();
        // Everything in the far tails: the tail intervals still bound D.
        let v: Vec<f32> = (0..64).map(|i| if i % 2 == 0 { 100.0 } else { -100.0 }).collect();
        screen.bin_into(&v, &mut scratch.counts);
        let (lo, hi) = screen.bounds(&scratch.counts);
        let exact = ks_test_gaussian(&v, 0.0, 1.0).statistic;
        assert!(lo <= exact + 1e-12 && exact <= hi + 1e-12, "L={lo} D={exact} U={hi}");
        assert!(screen.rejects(&v, &mut scratch));
        // All-identical samples at the mean.
        let v = vec![0.0f32; 64];
        assert_eq!(
            screen.rejects(&v, &mut scratch),
            ks_test_gaussian(&v, 0.0, 1.0).rejects_at(0.05)
        );
    }
}
