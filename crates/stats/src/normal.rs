//! The Normal distribution: density, CDF, quantile, and sampling.
//!
//! The protocol leans on this everywhere: the KS test compares upload
//! coordinates against `N(0, σ'²)`; the norm-test interval comes from the
//! Gaussian approximation of χ²_d; the "A little" attack needs the Normal
//! quantile; and DP noise itself is Gaussian. Sampling is implemented here
//! because `rand_distr` is not part of the approved offline crate set.

use crate::special::erfc;
use rand::Rng;

/// A Normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Standard normal `N(0, 1)`.
    pub const STANDARD: Normal = Normal { mean: 0.0, std: 1.0 };

    /// Builds `N(mean, std²)`. Panics if `std` is not strictly positive.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std > 0.0 && std.is_finite(), "std must be positive and finite, got {std}");
        Normal { mean, std }
    }

    /// The distribution mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution `Φ((x − μ)/σ)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `1 − CDF(x)`, accurate in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// Acklam's rational approximation refined by one Halley step, giving
    /// ~1e-15 relative accuracy.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        self.mean + self.std * standard_normal_quantile(p)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal_sample(rng)
    }
}

/// Standard normal quantile via Acklam's approximation + Halley refinement.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the true CDF.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Draws one standard normal sample (Marsaglia polar method).
pub fn standard_normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills `out` with i.i.d. `N(0, std²)` samples in `f32` precision.
///
/// This is the exact operation of the paper's Algorithm 1 line 10
/// (`N(0, σ²I)` added to the sum of normalized momentum slots) and of the
/// Gaussian attack (which uploads pure noise).
pub fn fill_gaussian<R: Rng + ?Sized>(rng: &mut R, std: f64, out: &mut [f32]) {
    for x in out {
        *x = (standard_normal_sample(rng) * std) as f32;
    }
}

/// Returns a fresh length-`d` vector of i.i.d. `N(0, std²)` samples.
pub fn gaussian_vector<R: Rng + ?Sized>(rng: &mut R, std: f64, d: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; d];
    fill_gaussian(rng, std, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_known_values() {
        let n = Normal::STANDARD;
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((n.cdf(-1.96) - 0.024_997_895_148_220_43).abs() < 1e-10);
        // 68-95-99.7 rule, the paper's footnote 5.
        let within_3 = n.cdf(3.0) - n.cdf(-3.0);
        assert!((within_3 - 0.997_300_203_936_740).abs() < 1e-10);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        let n = Normal::new(1.0, 2.0);
        // Trapezoid integration of the pdf over [-3, 3] vs cdf difference.
        let steps = 20_000;
        let (a, b) = (-3.0, 3.0);
        let h = (b - a) / steps as f64;
        let mut acc = 0.5 * (n.pdf(a) + n.pdf(b));
        for i in 1..steps {
            acc += n.pdf(a + i as f64 * h);
        }
        acc *= h;
        assert!((acc - (n.cdf(b) - n.cdf(a))).abs() < 1e-8);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-2.0, 0.5);
        for &p in &[1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn quantile_known_values() {
        // z_{0.975} ≈ 1.959963984540054
        assert!((standard_normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-12);
        assert!((standard_normal_quantile(0.5)).abs() < 1e-14);
    }

    #[test]
    fn sampling_matches_first_two_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(3.0, 2.0);
        let m = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..m {
            let x = n.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / m as f64;
        let var = sum_sq / m as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02, "mean={mean}");
        assert!((var - 4.0).abs() < 0.06, "var={var}");
    }

    #[test]
    fn gaussian_vector_norm_concentrates() {
        // ‖z‖² ~ σ²·χ²_d concentrates around σ²d — the basis of the paper's
        // first-stage norm test.
        let mut rng = StdRng::seed_from_u64(7);
        let d = 20_000;
        let sigma = 0.5;
        let v = gaussian_vector(&mut rng, sigma, d);
        let norm_sq: f64 = v.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let expected = sigma * sigma * d as f64;
        let std3 = 3.0 * sigma * sigma * (2.0 * d as f64).sqrt();
        assert!((norm_sq - expected).abs() < std3, "norm_sq={norm_sq} expected={expected}");
    }
}
