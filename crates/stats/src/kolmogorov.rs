//! The Kolmogorov distribution and exact finite-`n` KS CDF.
//!
//! The paper's first-stage aggregation computes a KS P-value for every upload
//! from the "Kolmogorov D-statistic table" [Marsaglia–Tsang–Wang 2003]. We
//! implement both the asymptotic Kolmogorov distribution (used at the
//! protocol's operating point, where the sample count is the model dimension
//! `d ≈ 25 000`) and Marsaglia–Tsang–Wang's exact matrix-power evaluation of
//! `P(D_n < d)` (used for small `n` and as a cross-check).

/// Survival function of the asymptotic Kolmogorov distribution,
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)`.
///
/// Returns 1 for λ ≤ 0 and switches to the θ-function series for small λ
/// where the alternating series converges slowly.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 0.4 {
        // For tiny λ the CDF underflows to 0; SF is 1 to machine precision.
        return 1.0 - kolmogorov_cdf(lambda);
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-17 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// CDF of the asymptotic Kolmogorov distribution via the θ-function series,
/// `K(λ) = (√(2π)/λ) Σ_{j≥1} exp(−(2j−1)² π² / (8λ²))`, which converges
/// fast for small λ.
pub fn kolmogorov_cdf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda >= 0.4 {
        return 1.0 - kolmogorov_sf(lambda);
    }
    let mut sum = 0.0f64;
    let factor = std::f64::consts::PI * std::f64::consts::PI / (8.0 * lambda * lambda);
    for j in 1..=20 {
        let odd = (2 * j - 1) as f64;
        let term = (-odd * odd * factor).exp();
        sum += term;
        if term < 1e-300 {
            break;
        }
    }
    ((2.0 * std::f64::consts::PI).sqrt() / lambda * sum).clamp(0.0, 1.0)
}

/// Exact `P(D_n < d)` by the Marsaglia–Tsang–Wang (2003) matrix-power method.
///
/// Cost is `O(m³ log n)` with `m = 2⌈nd⌉ − 1`; intended for `n` up to a few
/// hundred. For larger `n` use [`ks_p_value`](crate::ks::ks_p_value), which
/// applies the asymptotic distribution with Stephens' finite-`n` correction.
pub fn ks_cdf_exact(n: usize, d: f64) -> f64 {
    assert!(n >= 1, "need at least one sample");
    if d <= 0.0 {
        return 0.0;
    }
    if d >= 1.0 {
        return 1.0;
    }
    let nf = n as f64;
    let nd = nf * d;
    let k = nd.ceil() as usize;
    let h = k as f64 - nd;
    let m = 2 * k - 1;

    // Build the MTW H matrix.
    let mut hm = vec![0.0f64; m * m];
    for i in 0..m {
        for j in 0..m {
            if i as i64 - j as i64 + 1 >= 0 {
                hm[i * m + j] = 1.0;
            }
        }
    }
    for i in 0..m {
        hm[i * m] -= h.powi(i as i32 + 1);
        hm[(m - 1) * m + i] -= h.powi((m - i) as i32);
    }
    if 2.0 * h - 1.0 > 0.0 {
        hm[(m - 1) * m] += (2.0 * h - 1.0).powi(m as i32);
    }
    for i in 0..m {
        for j in 0..m {
            if i as i64 - j as i64 + 1 > 0 {
                for g in 1..=(i - j + 1) {
                    hm[i * m + j] /= g as f64;
                }
            }
        }
    }

    // H^n with decimal-exponent scaling to avoid overflow.
    let (hn, mut e_q) = mat_pow(&hm, m, n);
    let mut s = hn[(k - 1) * m + (k - 1)];
    for i in 1..=n {
        s = s * i as f64 / nf;
        if s < 1e-140 {
            s *= 1e140;
            e_q -= 140;
        }
    }
    (s * 10f64.powi(e_q)).clamp(0.0, 1.0)
}

/// `a · b` for `m×m` row-major matrices.
fn mat_mul(a: &[f64], b: &[f64], m: usize) -> Vec<f64> {
    let mut c = vec![0.0f64; m * m];
    for i in 0..m {
        for p in 0..m {
            let aip = a[i * m + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..m {
                c[i * m + j] += aip * b[p * m + j];
            }
        }
    }
    c
}

/// `(a^n, exponent)` such that the true power is `a^n · 10^exponent`,
/// rescaling whenever the central entry exceeds 1e140 (MTW's scheme).
fn mat_pow(a: &[f64], m: usize, n: usize) -> (Vec<f64>, i32) {
    if n == 1 {
        return (a.to_vec(), 0);
    }
    let (half, mut e) = mat_pow(a, m, n / 2);
    let mut v = mat_mul(&half, &half, m);
    e *= 2;
    if n % 2 == 1 {
        v = mat_mul(&v, a, m);
    }
    let center = v[(m / 2) * m + (m / 2)];
    if center > 1e140 {
        for x in &mut v {
            *x *= 1e-140;
        }
        e += 140;
    }
    (v, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_cdf_complementary() {
        for &l in &[0.2, 0.5, 0.8, 1.0, 1.5, 2.0] {
            assert!((kolmogorov_sf(l) + kolmogorov_cdf(l) - 1.0).abs() < 1e-12, "λ={l}");
        }
    }

    #[test]
    fn known_asymptotic_values() {
        // Classic critical values: Q(1.3581) ≈ 0.05, Q(1.2238) ≈ 0.10,
        // Q(1.6276) ≈ 0.01.
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 1e-4);
        assert!((kolmogorov_sf(1.2238) - 0.10).abs() < 1e-4);
        assert!((kolmogorov_sf(1.6276) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = -1.0;
        let mut l = 0.05;
        while l < 3.0 {
            let c = kolmogorov_cdf(l);
            assert!(c >= prev, "not monotone at λ={l}");
            prev = c;
            l += 0.05;
        }
    }

    #[test]
    fn exact_matches_n_equals_one() {
        // For one uniform sample, D₁ = max(U, 1−U): P(D₁ < d) = 2d − 1 on
        // [1/2, 1].
        for &d in &[0.6, 0.75, 0.9] {
            assert!((ks_cdf_exact(1, d) - (2.0 * d - 1.0)).abs() < 1e-12, "d={d}");
        }
        assert_eq!(ks_cdf_exact(1, 0.3), 0.0);
    }

    #[test]
    fn exact_matches_marsaglia_reference() {
        // Marsaglia–Tsang–Wang (2003) report K(100, 0.274) = 0.999999601309…
        let p = ks_cdf_exact(100, 0.274);
        assert!((p - 0.999_999_601_309).abs() < 1e-9, "got {p}");
        // Cross-check against the asymptotic SF at λ = √100·0.274 = 2.74:
        // the two must agree to within the O(1/√n) correction.
        let asym = 1.0 - kolmogorov_sf(2.74);
        assert!((p - asym).abs() < 1e-6, "exact={p} asym={asym}");
    }

    #[test]
    fn exact_approaches_asymptotic_for_large_n() {
        // At n = 500, the exact CDF at d = λ/√n should be within ~1e-2 of the
        // asymptotic distribution (plus O(1/√n) correction).
        let n = 500usize;
        for &lambda in &[0.8, 1.0, 1.3] {
            let d = lambda / (n as f64).sqrt();
            let exact = ks_cdf_exact(n, d);
            let asym = kolmogorov_cdf(lambda);
            assert!((exact - asym).abs() < 0.03, "λ={lambda}: exact={exact} asym={asym}");
        }
    }

    #[test]
    fn exact_boundaries() {
        assert_eq!(ks_cdf_exact(10, 0.0), 0.0);
        assert_eq!(ks_cdf_exact(10, 1.0), 1.0);
    }
}
