//! Special functions: log-gamma, regularized incomplete gamma, and the error
//! function family.
//!
//! Everything downstream builds on these: the Normal CDF (`erf`), the χ² CDF
//! (`gamma_p`), and the RDP accountant's log-space binomial sums (`ln_gamma`).
//! Implementations follow the classical Lanczos / series / continued-fraction
//! constructions and are accurate to ~1e-14 relative error over the ranges the
//! protocol exercises.

/// Natural log of the gamma function for `x > 0` (Lanczos approximation, g=7,
/// n=9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// ln of the binomial coefficient `C(n, k)` for real `n ≥ k ≥ 0` handled via
/// `ln_gamma`; used by the RDP accountant with integer arguments.
pub fn ln_binomial(n: f64, k: f64) -> f64 {
    assert!(n >= k && k >= 0.0, "ln_binomial requires n >= k >= 0");
    if k == 0.0 || k == n {
        return 0.0;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical-Recipes `gammp`). Defined for `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of P(a, x), convergent for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz), convergent
/// for x ≥ a + 1.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x) = P(1/2, x²)·sign(x)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// `ln(erfc(x))`, stable for arbitrarily large positive `x` where `erfc`
/// itself underflows (needed by the fractional-order RDP accountant).
pub fn ln_erfc(x: f64) -> f64 {
    if x <= 20.0 {
        // erfc via the upper incomplete gamma stays accurate (no
        // cancellation) well past the underflow-free range.
        erfc(x).ln()
    } else {
        // Asymptotic expansion: erfc(x) = exp(−x²)/(x√π) · (1 − 1/(2x²)
        // + 3/(4x⁴) − …).
        let x2 = x * x;
        let series = 1.0 - 0.5 / x2 + 0.75 / (x2 * x2) - 1.875 / (x2 * x2 * x2);
        -x2 - (x * std::f64::consts::PI.sqrt()).ln() + series.ln()
    }
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Numerically stable `ln(exp(a) − exp(b))` for `a ≥ b`.
///
/// Returns `-inf` when `a == b`.
pub fn log_sub_exp(a: f64, b: f64) -> f64 {
    assert!(a >= b, "log_sub_exp requires a >= b (got a={a}, b={b})");
    if a == b {
        return f64::NEG_INFINITY;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    a + (-(b - a).exp()).ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_small_x() {
        // Γ(0.25) ≈ 3.625609908
        assert!((ln_gamma(0.25) - 3.625_609_908_221_908f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        assert!((ln_binomial(5.0, 2.0) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10.0, 5.0) - 252.0f64.ln()).abs() < 1e-12);
        assert_eq!(ln_binomial(7.0, 0.0), 0.0);
        assert_eq!(ln_binomial(7.0, 7.0), 0.0);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (30.0, 25.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // χ²(2) CDF at its mean: P(1, 1) = 1 - e^{-1}.
        assert!((gamma_p(1.0, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
    }

    #[test]
    fn erf_known_values() {
        // erf(1) ≈ 0.8427007929497149
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_stays_accurate_in_the_tail() {
        // erfc(5) ≈ 1.5374597944280349e-12: direct 1 − erf(5) would lose all
        // precision.
        assert!((erfc(5.0) / 1.537_459_794_428_035e-12 - 1.0).abs() < 1e-8);
        assert!((erfc(-1.0) - (1.0 + 0.842_700_792_949_714_9)).abs() < 1e-12);
    }

    #[test]
    fn ln_erfc_matches_direct_and_tail() {
        // Direct region: ln(erfc(1)) ≈ ln(0.15729920705028513)
        assert!((ln_erfc(1.0) - 0.157_299_207_050_285_13f64.ln()).abs() < 1e-12);
        // erfc(10) ≈ 2.0884875837625446e-45
        assert!((ln_erfc(10.0) - 2.088_487_583_762_544_6e-45f64.ln()).abs() < 1e-8);
        // Far tail where erfc underflows: check continuity across the
        // series switch at x = 20 and the asymptotic value at x = 30.
        let left = ln_erfc(19.999_999);
        let right = ln_erfc(20.000_001);
        assert!((left - right).abs() < 1e-4, "discontinuity at switch: {left} vs {right}");
        // ln erfc(30) ≈ −x² − ln(x√π) ≈ −904.68…
        let v = ln_erfc(30.0);
        assert!((-905.0..=-900.0).contains(&v), "got {v}");
    }

    #[test]
    fn log_add_sub_exp_roundtrip() {
        let a = -5.0f64;
        let b = -7.0f64;
        let s = log_add_exp(a, b);
        assert!((s.exp() - (a.exp() + b.exp())).abs() < 1e-15);
        let d = log_sub_exp(s, b);
        assert!((d - a).abs() < 1e-12);
        assert_eq!(log_add_exp(f64::NEG_INFINITY, b), b);
        assert_eq!(log_sub_exp(a, a), f64::NEG_INFINITY);
    }
}
