//! Streaming descriptive statistics (Welford's algorithm).
//!
//! Used by the harness to aggregate repeated runs (the paper reports min, max,
//! and mean over seeds {1, 2, 3}) and by the "A little" attack, which needs the
//! coordinate-wise mean and standard deviation of the benign uploads.

/// Online accumulator for count, mean, variance, min, and max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningMoments {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        RunningMoments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when n < 1).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Coordinate-wise mean and population standard deviation of a set of equal
/// length vectors, as needed by the "A little" attack (Baruch et al.).
///
/// Returns `(mean, std)` vectors, or `None` when `vectors` is empty.
pub fn coordinate_moments(vectors: &[&[f32]]) -> Option<(Vec<f64>, Vec<f64>)> {
    let first = vectors.first()?;
    let d = first.len();
    let n = vectors.len() as f64;
    let mut mean = vec![0.0f64; d];
    for v in vectors {
        debug_assert_eq!(v.len(), d);
        for (m, &x) in mean.iter_mut().zip(*v) {
            *m += x as f64;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; d];
    for v in vectors {
        for ((s, &x), m) in var.iter_mut().zip(*v).zip(&mean) {
            let delta = x as f64 - m;
            *s += delta * delta;
        }
    }
    let std = var.into_iter().map(|s| (s / n).sqrt()).collect();
    Some((mean, std))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rm = RunningMoments::new();
        for &x in &data {
            rm.push(x);
        }
        assert_eq!(rm.count(), 8);
        assert!((rm.mean() - 5.0).abs() < 1e-12);
        assert!((rm.variance() - 4.0).abs() < 1e-12);
        assert!((rm.std() - 2.0).abs() < 1e-12);
        assert_eq!(rm.min(), 2.0);
        assert_eq!(rm.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let rm = RunningMoments::new();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance(), 0.0);
        assert_eq!(rm.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut all = RunningMoments::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn coordinate_moments_hand_example() {
        let a = [1.0f32, 0.0];
        let b = [3.0f32, 0.0];
        let (mean, std) = coordinate_moments(&[&a, &b]).unwrap();
        assert_eq!(mean, vec![2.0, 0.0]);
        assert_eq!(std, vec![1.0, 0.0]);
        assert!(coordinate_moments(&[]).is_none());
    }
}
