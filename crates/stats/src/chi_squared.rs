//! The χ² distribution.
//!
//! The squared norm of a `d`-dimensional Gaussian upload is `σ²·χ²_d`; the
//! paper's first-stage norm test (Algorithm 2, line 1) uses the Gaussian
//! approximation `N(σ²d, 2σ⁴d)` of that distribution. This module provides the
//! exact CDF (for tests and for callers that want exact tail bounds) and the
//! moments backing the approximation.

use crate::special::{gamma_p, gamma_q};

/// A χ² distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Builds χ²_k. Panics unless `k > 0`.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "degrees of freedom must be positive, got {k}");
        ChiSquared { k }
    }

    /// Degrees of freedom.
    #[inline]
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Mean (= k).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Variance (= 2k).
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// CDF `P(X ≤ x) = P(k/2, x/2)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.k / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)`, accurate in the tail.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        gamma_q(self.k / 2.0, x / 2.0)
    }

    /// Probability that `X` falls within `n_std` standard deviations of the
    /// mean (exact, not the Gaussian approximation).
    pub fn prob_within_std(&self, n_std: f64) -> f64 {
        let lo = self.mean() - n_std * self.variance().sqrt();
        let hi = self.mean() + n_std * self.variance().sqrt();
        self.cdf(hi) - self.cdf(lo.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        // χ²_2 is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
        let c2 = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 2.0, 5.0] {
            assert!((c2.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
        // χ²_1 CDF at 3.841458820694124 ≈ 0.95 (the 95% quantile).
        let c1 = ChiSquared::new(1.0);
        assert!((c1.cdf(3.841_458_820_694_124) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn cdf_sf_sum_to_one() {
        let c = ChiSquared::new(10.0);
        for &x in &[0.1, 5.0, 10.0, 30.0] {
            assert!((c.cdf(x) + c.sf(x) - 1.0).abs() < 1e-12);
        }
        assert_eq!(c.cdf(0.0), 0.0);
        assert_eq!(c.sf(-1.0), 1.0);
    }

    #[test]
    fn three_std_interval_matches_paper_footnote() {
        // Paper footnote 5: for large d, ‖g‖²/σ² ∈ [d − 3√(2d), d + 3√(2d)]
        // with probability ≈ 99.7%. Verify the exact χ² mass approaches that.
        let c = ChiSquared::new(25_450.0); // the paper's MLP dimension
        let p = c.prob_within_std(3.0);
        assert!((p - 0.9973).abs() < 2e-3, "p={p}");
    }

    #[test]
    fn moments() {
        let c = ChiSquared::new(7.0);
        assert_eq!(c.mean(), 7.0);
        assert_eq!(c.variance(), 14.0);
    }
}
