//! # dpbfl-stats
//!
//! Statistical substrate for the `dpbfl` stack: the paper's server-side
//! defenses are *statistical tests*, so this crate provides everything SciPy
//! supplied to the reference implementation, built from scratch:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, erf/erfc, and
//!   log-space add/sub (backing the RDP accountant).
//! * [`normal`] — Normal pdf/cdf/quantile and Gaussian sampling (Marsaglia
//!   polar method; `rand_distr` is not in the approved offline crate set).
//! * [`chi_squared`] — χ² CDF backing the first-stage norm test.
//! * [`kolmogorov`] — the Kolmogorov distribution (asymptotic series) and the
//!   Marsaglia–Tsang–Wang exact finite-`n` CDF.
//! * [`ks`] — the one-sample KS test the server runs on every upload, plus
//!   the sort-free [`ks::KsGaussianScreen`] that decides most uploads in one
//!   `O(d)` pass (decision-equivalent to the sorted test by contract).
//! * [`moments`] — streaming moments (seed aggregation, "A little" attack).
//! * [`sampling`] — seeded without-replacement subset draws (per-round client
//!   cohorts).

pub mod chi_squared;
pub mod kolmogorov;
pub mod ks;
pub mod moments;
pub mod normal;
pub mod sampling;
pub mod special;

pub use chi_squared::ChiSquared;
pub use ks::{
    ks_test, ks_test_gaussian, ks_test_gaussian_with, KsGaussianScreen, KsResult, KsScratch,
    KsScreenVerdict,
};
pub use moments::RunningMoments;
pub use normal::{fill_gaussian, gaussian_vector, Normal};
pub use sampling::sample_without_replacement;
