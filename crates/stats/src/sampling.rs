//! Seeded subset sampling (per-round client cohorts).
//!
//! Production federated rounds don't poll every client: the server samples a
//! cohort of `⌈q·n⌉` clients per round. The draw must be a pure function of
//! the round's dedicated RNG stream — cohort membership is part of the
//! simulation's determinism contract, so the sampler below is a plain
//! partial Fisher–Yates shuffle with a fixed draw order (one `gen_range`
//! per selected slot), never anything rejection-based whose draw count
//! could depend on floating-point comparisons.

use rand::Rng;

/// Draws `m` distinct indices from `0..n` uniformly without replacement and
/// returns them **sorted ascending**.
///
/// The draw sequence is a partial Fisher–Yates shuffle: slot `i` swaps with
/// a uniform position in `i..n`, consuming exactly `m` RNG draws regardless
/// of which indices win. Sorting the result decouples downstream iteration
/// order from the shuffle order, so callers can fold over the cohort in
/// index order (the merge-order contract of the streaming defense).
///
/// Panics if `m > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Vec<usize> {
    assert!(m <= n, "cannot draw {m} distinct indices from a population of {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(m);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn draws_are_distinct_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = sample_without_replacement(&mut rng, 100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted + distinct: {s:?}");
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn same_seed_same_cohort() {
        let a = sample_without_replacement(&mut StdRng::seed_from_u64(42), 1000, 64);
        let b = sample_without_replacement(&mut StdRng::seed_from_u64(42), 1000, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn full_draw_is_the_identity_cohort() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_without_replacement(&mut rng, 17, 17);
        assert_eq!(s, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn consumes_exactly_m_draws() {
        // Two samplers on the same stream, different populations: after m
        // draws the streams must be in the same state (the fixed-draw-count
        // property the determinism contract relies on).
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let _ = sample_without_replacement(&mut a, 50, 5);
        for _ in 0..5 {
            let _ = b.gen_range(0usize..10);
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn roughly_uniform_membership() {
        // Each index should appear with probability m/n; a loose band is
        // enough to catch an off-by-one in the shuffle range.
        let (n, m, trials) = (20, 5, 4000);
        let mut counts = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..trials {
            for i in sample_without_replacement(&mut rng, n, m) {
                counts[i] += 1;
            }
        }
        let expected = trials * m / n; // 1000
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < 0.15 * expected as f64,
                "index {i} drawn {c} times (expected ≈ {expected})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn rejects_oversized_draw() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }
}
