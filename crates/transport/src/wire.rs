//! The message grammar on top of the frame layer.
//!
//! Seven message kinds carry a whole federated run:
//!
//! | kind | message      | direction       | payload |
//! |------|--------------|-----------------|---------|
//! | 1    | `ClientHello`| client → server | `u32 count, count × u32` worker indices the client serves |
//! | 2    | `Welcome`    | server → client | length-prefixed UTF-8: the full run config as canonical JSON |
//! | 3    | `RoundBegin` | server → client | `u32 round, u64 deadline_ms, u32s members, f32s params` |
//! | 4    | `Upload`     | client → server | `u32 round, u32 worker, f32s data` |
//! | 5    | `RunComplete`| server → client | length-prefixed UTF-8: the `RunSummary` as canonical JSON |
//! | 6    | `HelloReject`| server → client | length-prefixed UTF-8: why the claim was refused |
//! | 7    | `RoundReplay`| server → client | `u32 round, u32s members, f32s params` — catch-up for a reconnect |
//!
//! Slices are length-prefixed (`u32` count, then raw little-endian words) and
//! every count is validated against the bytes actually present before any
//! allocation; a decoded payload must be consumed exactly (trailing bytes are
//! an error). Structured payloads (config, summary) travel as opaque JSON so
//! this crate stays independent of the core types — the serializing side owns
//! the schema.

use crate::frame::{put, Frame, FrameError, PayloadReader};
use std::io::{Read, Write};

/// Frame-kind discriminants (the `kind` byte of the frame header).
pub mod kind {
    /// Client's worker-index claim.
    pub const CLIENT_HELLO: u8 = 1;
    /// Server's run-configuration broadcast.
    pub const WELCOME: u8 = 2;
    /// Round broadcast: cohort members + model parameters + deadline.
    pub const ROUND_BEGIN: u8 = 3;
    /// One worker's upload for one round.
    pub const UPLOAD: u8 = 4;
    /// Final summary; the connection closes after this.
    pub const RUN_COMPLETE: u8 = 5;
    /// Structured claim refusal; the connection closes after this.
    pub const HELLO_REJECT: u8 = 6;
    /// Historical round re-broadcast so a reconnecting client can replay
    /// state evolution without uploading.
    pub const ROUND_REPLAY: u8 = 7;
}

/// One protocol message (see the module table for the wire layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: "I serve these global worker indices."
    ClientHello {
        /// Global worker indices, ascending, no duplicates (server-enforced).
        workers: Vec<u32>,
    },
    /// Server → client: the run configuration as canonical JSON.
    Welcome {
        /// Serialized `SimulationConfig`.
        config_json: String,
    },
    /// Server → client: one round's broadcast.
    RoundBegin {
        /// Round index, 0-based.
        round: u32,
        /// Upload deadline in milliseconds from receipt; advisory for the
        /// client, enforced by the server.
        deadline_ms: u64,
        /// The cohort members *this client* must step this round.
        members: Vec<u32>,
        /// Current model parameters.
        params: Vec<f32>,
    },
    /// Client → server: one worker's upload.
    Upload {
        /// Round the upload answers.
        round: u32,
        /// Global worker index.
        worker: u32,
        /// The masked, noised gradient (raw `f32` words).
        data: Vec<f32>,
    },
    /// Server → client: the run is over; here is the summary.
    RunComplete {
        /// Serialized `RunSummary`.
        summary_json: String,
    },
    /// Server → client: your `ClientHello` was refused (out-of-range claim,
    /// overlap with a live connection, …). The server closes the connection
    /// after sending this; the reason is human-readable and stable enough
    /// for clients to log and decide whether to retry.
    HelloReject {
        /// Why the claim was refused.
        reason: String,
    },
    /// Server → client: one already-closed round, re-broadcast during
    /// reconnect admission. A stateful (pooled) client steps the listed
    /// members with these parameters but uploads nothing — the round is
    /// over; the replay only brings worker RNG/momentum state up to date.
    /// Stateless (on-demand) clients ignore it.
    RoundReplay {
        /// The closed round index, 0-based.
        round: u32,
        /// The members of that round this client now serves.
        members: Vec<u32>,
        /// The model parameters that round broadcast.
        params: Vec<f32>,
    },
}

impl Message {
    /// Encodes into a frame (kind byte + payload bytes).
    pub fn encode(&self) -> Frame {
        let mut payload = Vec::new();
        let kind = match self {
            Message::ClientHello { workers } => {
                put::u32s(&mut payload, workers);
                kind::CLIENT_HELLO
            }
            Message::Welcome { config_json } => {
                put::str(&mut payload, config_json);
                kind::WELCOME
            }
            Message::RoundBegin { round, deadline_ms, members, params } => {
                put::u32(&mut payload, *round);
                put::u64(&mut payload, *deadline_ms);
                put::u32s(&mut payload, members);
                put::f32s(&mut payload, params);
                kind::ROUND_BEGIN
            }
            Message::Upload { round, worker, data } => {
                put::u32(&mut payload, *round);
                put::u32(&mut payload, *worker);
                put::f32s(&mut payload, data);
                kind::UPLOAD
            }
            Message::RunComplete { summary_json } => {
                put::str(&mut payload, summary_json);
                kind::RUN_COMPLETE
            }
            Message::HelloReject { reason } => {
                put::str(&mut payload, reason);
                kind::HELLO_REJECT
            }
            Message::RoundReplay { round, members, params } => {
                put::u32(&mut payload, *round);
                put::u32s(&mut payload, members);
                put::f32s(&mut payload, params);
                kind::ROUND_REPLAY
            }
        };
        Frame { kind, payload }
    }

    /// Decodes a frame back into a message.
    ///
    /// Errors (never panics) on unknown kinds, counts inconsistent with the
    /// payload length, trailing bytes, and non-UTF-8 JSON fields.
    pub fn decode(frame: &Frame) -> Result<Message, FrameError> {
        let mut r = PayloadReader::new(&frame.payload);
        let message = match frame.kind {
            kind::CLIENT_HELLO => Message::ClientHello { workers: r.u32s("hello workers")? },
            kind::WELCOME => Message::Welcome { config_json: r.str("welcome config")? },
            kind::ROUND_BEGIN => Message::RoundBegin {
                round: r.u32("round index")?,
                deadline_ms: r.u64("round deadline")?,
                members: r.u32s("round members")?,
                params: r.f32s("round params")?,
            },
            kind::UPLOAD => Message::Upload {
                round: r.u32("upload round")?,
                worker: r.u32("upload worker")?,
                data: r.f32s("upload data")?,
            },
            kind::RUN_COMPLETE => Message::RunComplete { summary_json: r.str("run summary")? },
            kind::HELLO_REJECT => Message::HelloReject { reason: r.str("reject reason")? },
            kind::ROUND_REPLAY => Message::RoundReplay {
                round: r.u32("replay round")?,
                members: r.u32s("replay members")?,
                params: r.f32s("replay params")?,
            },
            other => return Err(FrameError::UnknownKind(other)),
        };
        r.finish("trailing bytes")?;
        Ok(message)
    }

    /// Encodes and writes this message as one frame.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let frame = self.encode();
        crate::frame::write_frame(w, frame.kind, &frame.payload)
    }

    /// Reads one frame (payload capped at `max_len`) and decodes it.
    pub fn read_from(r: &mut impl Read, max_len: u32) -> Result<Message, FrameError> {
        Message::decode(&crate::frame::read_frame(r, max_len)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips() {
        let messages = [
            Message::ClientHello { workers: vec![0, 1, 7] },
            Message::Welcome { config_json: "{\"n\":3}".into() },
            Message::RoundBegin {
                round: 9,
                deadline_ms: 30_000,
                members: vec![2, 3],
                params: vec![1.5, -0.0, f32::MIN_POSITIVE],
            },
            Message::Upload { round: 9, worker: 3, data: vec![0.25, -3.5] },
            Message::RunComplete { summary_json: "{}".into() },
            Message::HelloReject { reason: "worker 3 is claimed by a live connection".into() },
            Message::RoundReplay { round: 2, members: vec![0, 4], params: vec![0.5, -1.25] },
        ];
        for m in &messages {
            let frame = m.encode();
            assert_eq!(&Message::decode(&frame).unwrap(), m);
        }
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_error() {
        assert!(matches!(
            Message::decode(&Frame { kind: 99, payload: vec![] }),
            Err(FrameError::UnknownKind(99))
        ));
        let mut frame = Message::RunComplete { summary_json: "{}".into() }.encode();
        frame.payload.push(0);
        assert!(matches!(Message::decode(&frame), Err(FrameError::Malformed("trailing bytes"))));
    }

    #[test]
    fn inconsistent_counts_error_before_allocation() {
        // A hello declaring 2^30 workers in a 8-byte payload must be caught
        // by the remaining-length check, not by a giant Vec reservation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(1u32 << 30).to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Message::decode(&Frame { kind: kind::CLIENT_HELLO, payload }),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn non_utf8_json_field_errors() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Message::decode(&Frame { kind: kind::WELCOME, payload }),
            Err(FrameError::Malformed(_))
        ));
    }
}
