//! The dpbfl wire protocol: a hand-rolled, dependency-free frame codec plus
//! the message grammar the serving binaries speak.
//!
//! The federated round loop in `dpbfl` talks to clients through a `Transport`
//! trait; this crate is the wire half of the remote implementation. It is
//! deliberately tiny and `std`-only — no async runtime, no serialization
//! framework — because the protocol itself is tiny:
//!
//! ```text
//! connection  = handshake  frame*
//! handshake   = magic("DPBF")  version(u16 LE)          ; each direction
//! frame       = kind(u8)  len(u32 LE)  payload(len bytes)
//! ```
//!
//! Everything above the frame layer is a [`wire::Message`]: client hello
//! (worker-index claim), server welcome (the full run configuration as
//! canonical JSON), round begin (broadcast parameters + cohort + deadline),
//! upload (one worker's masked gradient), and run complete (the final
//! summary). Multi-byte integers are little-endian; model parameters and
//! uploads travel as raw `f32` little-endian words, so the bytes a client
//! computes are exactly the bytes the server folds — bit-identical to an
//! in-process run by construction.
//!
//! Decoding is defensive end to end: truncated frames, oversized declared
//! lengths, bad magic/version bytes, unknown kinds, and inconsistent payload
//! counts all surface as [`frame::FrameError`] values — never a panic, and
//! never an allocation beyond the caller-supplied frame-size cap.

pub mod frame;
pub mod wire;

pub use frame::{
    read_frame, write_frame, Frame, FrameError, DEFAULT_MAX_FRAME_LEN, MAGIC, VERSION,
};
pub use wire::Message;
