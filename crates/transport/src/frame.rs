//! The length-prefixed frame layer: handshake, frame header, and the
//! defensive byte-level readers the message grammar is built on.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic, sent first on every connection (both directions).
pub const MAGIC: [u8; 4] = *b"DPBF";

/// Protocol version, sent as `u16` little-endian right after the magic.
/// Bumped on any incompatible change to the frame or message grammar.
/// Version 2 added the reconnect grammar (`HelloReject`, `RoundReplay`).
pub const VERSION: u16 = 2;

/// Default cap on a frame's declared payload length (64 MiB) — far above any
/// legitimate frame (the largest, `RoundBegin` at the paper's model size,
/// is ~100 KiB) while keeping a malicious length field from driving an
/// unbounded allocation.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// One decoded frame: a kind tag and its raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message-kind discriminant (see `wire::kind`).
    pub kind: u8,
    /// Raw payload; interpretation is the kind's business.
    pub payload: Vec<u8>,
}

/// Everything that can go wrong while reading the wire.
///
/// Every variant is a recoverable error value — the codec never panics on
/// adversarial input, and never allocates more than the configured frame cap.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// The peer's first bytes were not the protocol magic.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// A frame declared a payload longer than the configured cap.
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The stream ended mid-handshake or mid-frame.
    Truncated,
    /// The frame kind byte is not part of the grammar.
    UnknownKind(u8),
    /// A structurally invalid payload (bad counts, trailing bytes, bad UTF-8).
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad protocol magic {m:02x?} (want {MAGIC:02x?})"),
            FrameError::BadVersion(v) => {
                write!(f, "peer speaks protocol version {v}, this build speaks {VERSION}")
            }
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} payload bytes, cap is {max}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes the 6-byte handshake (`MAGIC` + `VERSION` LE).
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())
}

/// Reads and validates the peer's handshake.
pub fn read_handshake(r: &mut impl Read) -> Result<(), FrameError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut version = [0u8; 2];
    r.read_exact(&mut version)?;
    let version = u16::from_le_bytes(version);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    Ok(())
}

/// Writes one frame: `kind (u8) | len (u32 LE) | payload`.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&[kind])?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, allocating at most `max_len` payload bytes.
///
/// A declared length above `max_len` is rejected *before* any allocation —
/// this is the bound that keeps a hostile peer from requesting gigabytes
/// with five header bytes.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
    if len > max_len {
        return Err(FrameError::Oversized { declared: len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// Little-endian append helpers for payload construction.
pub(crate) mod put {
    /// Appends a `u32` LE.
    pub fn u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` LE.
    pub fn u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `u32` slice (`count` then raw LE words).
    pub fn u32s(buf: &mut Vec<u8>, vs: &[u32]) {
        u32(buf, vs.len() as u32);
        for &v in vs {
            u32(buf, v);
        }
    }

    /// Appends a length-prefixed `f32` slice (`count` then raw LE words).
    pub fn f32s(buf: &mut Vec<u8>, vs: &[f32]) {
        u32(buf, vs.len() as u32);
        for &v in vs {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends length-prefixed UTF-8 bytes.
    pub fn str(buf: &mut Vec<u8>, s: &str) {
        u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked cursor over a frame payload. Every read validates the
/// remaining length first, so decoding hostile bytes can only ever produce a
/// [`FrameError::Malformed`], and declared element counts are checked against
/// the bytes actually present *before* any allocation.
pub(crate) struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(FrameError::Malformed(what));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Length-prefixed `u32` slice; the count is validated against the
    /// remaining payload before the vector is sized.
    pub fn u32s(&mut self, what: &'static str) -> Result<Vec<u32>, FrameError> {
        let count = self.u32(what)? as usize;
        let bytes = self.take(count.checked_mul(4).ok_or(FrameError::Malformed(what))?, what)?;
        Ok(bytes.chunks_exact(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect())
    }

    /// Length-prefixed `f32` slice, same validation discipline.
    pub fn f32s(&mut self, what: &'static str) -> Result<Vec<f32>, FrameError> {
        let count = self.u32(what)? as usize;
        let bytes = self.take(count.checked_mul(4).ok_or(FrameError::Malformed(what))?, what)?;
        Ok(bytes.chunks_exact(4).map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, FrameError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed(what))
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(self, what: &'static str) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed(what))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, &[1, 2, 3]).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(frame, Frame { kind: 7, payload: vec![1, 2, 3] });
    }

    #[test]
    fn handshake_roundtrip_and_rejections() {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        assert_eq!(buf.len(), 6);
        read_handshake(&mut Cursor::new(&buf)).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_handshake(&mut Cursor::new(&bad_magic)),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            read_handshake(&mut Cursor::new(&bad_version)),
            Err(FrameError::BadVersion(_))
        ));

        assert!(matches!(read_handshake(&mut Cursor::new(&buf[..3])), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        // Five header bytes declaring a 4 GiB-1 payload: must error, not OOM.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024),
            Err(FrameError::Oversized { declared: u32::MAX, max: 1024 })
        ));
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 2, &[0u8; 100]).unwrap();
        for cut in [0, 3, 5, 50, 104] {
            assert!(
                matches!(
                    read_frame(&mut Cursor::new(&buf[..cut]), DEFAULT_MAX_FRAME_LEN),
                    Err(FrameError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }
}
