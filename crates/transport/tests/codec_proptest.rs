//! Property and adversarial tests for the frame codec (the wire layer the
//! serving binaries trust with hostile bytes).
//!
//! Two families:
//!
//! 1. **Roundtrip identity** — for arbitrary payload bytes and arbitrary
//!    messages of every kind, `decode(encode(x)) == x`, both at the frame
//!    layer and the message layer, including a full write→read pass through
//!    a byte stream carrying several frames back to back.
//! 2. **Adversarial decode** — truncations at every prefix length, oversized
//!    declared lengths, corrupted magic/version bytes, random byte soup, and
//!    bit-flipped valid frames must all produce `Err(FrameError::…)` —
//!    never a panic, and never an allocation beyond the configured cap.

use dpbfl_transport::frame::{
    read_frame, read_handshake, write_frame, write_handshake, Frame, FrameError,
    DEFAULT_MAX_FRAME_LEN,
};
use dpbfl_transport::wire::{kind, Message};
use proptest::prelude::*;
use std::io::Cursor;

/// An arbitrary message of the kind selected by `which`, built from plain
/// generated vectors (the vendored proptest has no `prop_oneof`).
fn build_message(which: usize, ints: Vec<u32>, floats: Vec<f32>, text: String) -> Message {
    match which % 7 {
        0 => Message::ClientHello { workers: ints },
        1 => Message::Welcome { config_json: text },
        2 => Message::RoundBegin {
            round: ints.first().copied().unwrap_or(0),
            deadline_ms: 1000 * ints.last().copied().unwrap_or(0) as u64,
            members: ints,
            params: floats,
        },
        3 => Message::Upload {
            round: ints.first().copied().unwrap_or(0),
            worker: ints.last().copied().unwrap_or(0),
            data: floats,
        },
        4 => Message::RunComplete { summary_json: text },
        5 => Message::HelloReject { reason: text },
        6 => Message::RoundReplay {
            round: ints.first().copied().unwrap_or(0),
            members: ints,
            params: floats,
        },
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_roundtrips_through_a_byte_stream(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, &payload).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(frame, Frame { kind, payload });
    }

    #[test]
    fn message_encode_decode_is_identity(
        which in 0usize..7,
        ints in prop::collection::vec(0u32..=u32::MAX, 0..64),
        floats in prop::collection::vec(-1.0e30f32..1.0e30, 0..64),
        text_bytes in prop::collection::vec(0u32..0xD7FF, 0..32),
    ) {
        let text: String = text_bytes
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        let message = build_message(which, ints, floats, text);
        let frame = message.encode();
        prop_assert_eq!(Message::decode(&frame).unwrap(), message);
    }

    #[test]
    fn several_frames_stream_back_to_back(
        payload_a in prop::collection::vec(0u8..=255, 0..64),
        payload_b in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let mut buf = Vec::new();
        write_handshake(&mut buf).unwrap();
        write_frame(&mut buf, 1, &payload_a).unwrap();
        write_frame(&mut buf, 2, &payload_b).unwrap();
        let mut cursor = Cursor::new(&buf);
        read_handshake(&mut cursor).unwrap();
        prop_assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap().payload, payload_a);
        prop_assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap().payload, payload_b);
    }

    #[test]
    fn truncated_frames_error_never_panic(
        payload in prop::collection::vec(0u8..=255, 1..128),
        cut_seed in 0usize..10_000,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, &payload).unwrap();
        let cut = cut_seed % buf.len(); // strictly shorter than the frame
        let result = read_frame(&mut Cursor::new(&buf[..cut]), DEFAULT_MAX_FRAME_LEN);
        prop_assert!(matches!(result, Err(FrameError::Truncated)));
    }

    #[test]
    fn random_byte_soup_never_panics_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        // Whatever happens, it must be a value, not a panic — and any frame
        // that does parse must respect the cap.
        let mut cursor = Cursor::new(&bytes);
        if let Ok(frame) = read_frame(&mut cursor, 128) {
            prop_assert!(frame.payload.len() <= 128);
            // Message decoding over arbitrary payloads must also be total.
            let _ = Message::decode(&frame);
        }
        let _ = read_handshake(&mut Cursor::new(&bytes));
    }

    #[test]
    fn corrupted_valid_messages_error_or_decode_never_panic(
        which in 0usize..7,
        ints in prop::collection::vec(0u32..1000, 0..16),
        floats in prop::collection::vec(-10.0f32..10.0, 0..16),
        flip_byte in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let message = build_message(which, ints, floats, "{\"k\":1}".to_string());
        let mut frame = message.encode();
        if !frame.payload.is_empty() {
            let at = flip_byte % frame.payload.len();
            frame.payload[at] ^= 1 << flip_bit;
        }
        // Totality: corrupted payloads may still decode (bit flips inside a
        // float are legal) but must never panic or misreport lengths.
        let _ = Message::decode(&frame);
    }

    #[test]
    fn oversized_declared_lengths_error_before_allocation(
        declared in 1025u32..=u32::MAX,
        kind in 0u8..=255,
    ) {
        let mut buf = vec![kind];
        buf.extend_from_slice(&declared.to_le_bytes());
        // No payload follows at all: if the length check did not fire first,
        // read_frame would try to allocate `declared` bytes.
        let result = read_frame(&mut Cursor::new(&buf), 1024);
        prop_assert!(
            matches!(result, Err(FrameError::Oversized { declared: d, max: 1024 }) if d == declared)
        );
    }
}

/// Handshake corruption at every byte: each single-byte corruption of the
/// 6-byte preamble must produce `BadMagic` or `BadVersion`, never success.
#[test]
fn every_corrupted_handshake_byte_is_rejected() {
    let mut good = Vec::new();
    write_handshake(&mut good).unwrap();
    for at in 0..good.len() {
        let mut bad = good.clone();
        bad[at] ^= 0xA5;
        let result = read_handshake(&mut Cursor::new(&bad));
        assert!(
            matches!(result, Err(FrameError::BadMagic(_)) | Err(FrameError::BadVersion(_))),
            "corruption at byte {at} was accepted"
        );
    }
}

/// The inner count fields are validated against bytes present, not trusted:
/// every slice-bearing kind with an inflated count must error.
#[test]
fn inflated_inner_counts_are_rejected() {
    for k in [kind::CLIENT_HELLO, kind::ROUND_BEGIN, kind::UPLOAD, kind::ROUND_REPLAY] {
        let mut payload = Vec::new();
        if k == kind::ROUND_BEGIN {
            payload.extend_from_slice(&0u32.to_le_bytes()); // round
            payload.extend_from_slice(&0u64.to_le_bytes()); // deadline
        }
        if k == kind::UPLOAD {
            payload.extend_from_slice(&0u32.to_le_bytes()); // round
            payload.extend_from_slice(&0u32.to_le_bytes()); // worker
        }
        if k == kind::ROUND_REPLAY {
            payload.extend_from_slice(&0u32.to_le_bytes()); // round
        }
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd count
        let result = Message::decode(&Frame { kind: k, payload });
        assert!(matches!(result, Err(FrameError::Malformed(_))), "kind {k} accepted");
    }
}
