//! Server-side aggregation cost: the paper's two-stage rule vs the classical
//! robust aggregators (Table 1 rows), at the paper's operating point
//! (n = 25 workers, d = 25 450).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::aggregator::AggregatorKind;
use dpbfl::first_stage::FirstStage;
use dpbfl::second_stage::SecondStage;
use dpbfl_stats::normal::gaussian_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn uploads(n: usize, d: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..n).map(|_| gaussian_vector(&mut rng, 0.05, d)).collect()
}

fn bench_aggregators(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_rules");
    group.sample_size(10);
    let d = 25_450;
    let n = 25;
    let ups = uploads(n, d);

    for (name, kind) in [
        ("mean", AggregatorKind::Mean),
        ("krum", AggregatorKind::Krum { f: 10 }),
        ("coordinate_median", AggregatorKind::CoordinateMedian),
        ("trimmed_mean", AggregatorKind::TrimmedMean { trim: 8 }),
        ("geometric_median", AggregatorKind::GeometricMedian),
    ] {
        group.bench_function(BenchmarkId::new(name, format!("n{n}_d{d}")), |b| {
            b.iter(|| std::hint::black_box(kind.aggregate(&ups)))
        });
    }

    // The paper's two-stage rule: first-stage tests + inner-product
    // selection (server gradient precomputed here; its cost is the aux
    // forward/backward, benched separately in per_example_grad).
    let first = FirstStage::new(0.05, d, 0.05, 3.0);
    let server_grad = {
        let mut rng = StdRng::seed_from_u64(2);
        gaussian_vector(&mut rng, 1.0, d)
    };
    group.bench_function(BenchmarkId::new("two_stage", format!("n{n}_d{d}")), |b| {
        b.iter(|| {
            let mut ups = ups.clone();
            for u in &mut ups {
                first.filter(u);
            }
            let mut second = SecondStage::new(n, 0.4);
            std::hint::black_box(second.select(&ups, &server_grad))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aggregators);
criterion_main!(benches);
