//! First-stage test throughput (Algorithm 2): the norm test is O(d), the
//! exact KS test is O(d log d), and `full_check` is the production sort-free
//! fast path (O(d) screen + sorted fallback only in the critical band; see
//! the `ks_fastpath` bench for the side-by-side fast-vs-reference numbers).
//! This bench shows where server time goes and how it scales with the model
//! dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::first_stage::FirstStage;
use dpbfl_stats::ks::ks_test_gaussian;
use dpbfl_stats::normal::gaussian_vector;
use dpbfl_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_first_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_stage");
    group.sample_size(20);
    for d in [6_000usize, 25_450] {
        let mut rng = StdRng::seed_from_u64(1);
        let upload = gaussian_vector(&mut rng, 0.05, d);
        let stage = FirstStage::new(0.05, d, 0.05, 3.0);

        group.bench_function(BenchmarkId::new("norm_test", d), |b| {
            b.iter(|| std::hint::black_box(vecops::l2_norm_sq(&upload)))
        });
        group.bench_function(BenchmarkId::new("ks_test", d), |b| {
            b.iter(|| std::hint::black_box(ks_test_gaussian(&upload, 0.0, 0.05)))
        });
        group.bench_function(BenchmarkId::new("full_check", d), |b| {
            b.iter(|| std::hint::black_box(stage.check(&upload)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_first_stage);
criterion_main!(benches);
