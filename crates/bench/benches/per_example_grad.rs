//! Per-example gradient cost — the worker-side hot loop. DP-SGD computes one
//! of these per batch slot per iteration; the paper's MLP (`d = 25 450`) and
//! MNIST CNN (`d = 21 802`) differ by ~40× here, which is why reduced-scale
//! experiments default to the MLP.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl_nn::{zoo, CrossEntropyLoss};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_example_gradient");
    group.sample_size(20);
    let loss = CrossEntropyLoss;

    let mut rng = StdRng::seed_from_u64(1);
    let mut mlp = zoo::mlp_784(&mut rng);
    let x_mlp = vec![0.5f32; 784];
    let mut g_mlp = vec![0.0f32; mlp.param_len()];
    group.bench_function("mlp_784_d25450", |b| {
        b.iter(|| std::hint::black_box(mlp.example_gradient(&loss, &x_mlp, 3, &mut g_mlp)))
    });

    let mut cnn = zoo::mnist_cnn(&mut rng);
    let x_cnn = vec![0.5f32; 784];
    let mut g_cnn = vec![0.0f32; cnn.param_len()];
    group.bench_function("mnist_cnn_d21802", |b| {
        b.iter(|| std::hint::black_box(cnn.example_gradient(&loss, &x_cnn, 3, &mut g_cnn)))
    });

    let mut colo = zoo::colorectal_cnn(&mut rng);
    let x_colo = vec![0.5f32; 3 * 32 * 32];
    let mut g_colo = vec![0.0f32; colo.param_len()];
    group.bench_function("colorectal_cnn_d25144", |b| {
        b.iter(|| std::hint::black_box(colo.example_gradient(&loss, &x_colo, 3, &mut g_colo)))
    });
    group.finish();
}

criterion_group!(benches, bench_gradients);
criterion_main!(benches);
