//! The sort-free first-stage fast path vs the always-sort reference — the
//! headline numbers of the KS-screen optimization, plus hard regression
//! guards.
//!
//! Before any timing, the bench **asserts** on benign uploads that (a) the
//! fast path's verdicts are identical to the reference implementation's and
//! (b) at least 70 % of benign uploads are decided by the screen without the
//! sorted fallback. Criterion's `--test` smoke mode runs this body in CI, so
//! the fast path cannot silently regress to the sorted path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::first_stage::{FirstStage, KsScratch};
use dpbfl_stats::ks::KsScreenVerdict;
use dpbfl_stats::normal::gaussian_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NOISE_STD: f64 = 0.05;
const UPLOADS: usize = 20;

fn benign_uploads(d: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gaussian_vector(&mut rng, NOISE_STD, d)).collect()
}

fn bench_ks_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks_fastpath");
    group.sample_size(10);
    for d in [6_000usize, 25_450] {
        let stage = FirstStage::new(NOISE_STD, d, 0.05, 3.0);
        let ups = benign_uploads(d, UPLOADS, d as u64);
        let mut scratch = KsScratch::new();

        // Regression guards (run once, before timing).
        let mut fallbacks = 0usize;
        for u in &ups {
            assert_eq!(
                stage.check_with(u, &mut scratch),
                stage.check_reference(u),
                "fast path diverged from the reference at d={d}"
            );
            if stage.ks_screen().screen(u, &mut scratch) == KsScreenVerdict::Borderline {
                fallbacks += 1;
            }
        }
        assert!(
            fallbacks * 10 <= UPLOADS * 3,
            "fast path regressed to sorting: {fallbacks}/{UPLOADS} benign uploads \
             fell back at d={d}"
        );

        group.bench_function(BenchmarkId::new("fast_check", d), |b| {
            b.iter(|| {
                for u in &ups {
                    std::hint::black_box(stage.check_with(u, &mut scratch));
                }
            })
        });
        group.bench_function(BenchmarkId::new("reference_check", d), |b| {
            b.iter(|| {
                for u in &ups {
                    std::hint::black_box(stage.check_reference(u));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ks_fastpath);
criterion_main!(benches);
