//! Served-round throughput — the full `serving/loopback_smoke` cell driven
//! over a loopback TCP socket (`BoundServer` + two `run_client` threads)
//! vs the same cell through the in-process transport.
//!
//! Before any timing, the bench **asserts** the serving determinism
//! contract: the served run's `RunSummary` must serialize byte-identically
//! to the in-process run's. Criterion's `--test` smoke mode runs this body
//! in CI, so the wire path cannot silently drift from the reference.
//!
//! The printed figures are the `ServingReport` numbers `dpbfl-server
//! --bench-out` writes to `BENCH_serving.json`: p50/p99 round latency and
//! rounds/sec over the loopback.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl::prelude::*;
use dpbfl_harness::registry;

/// One full served run: bind an ephemeral loopback port, spawn one client
/// thread per worker set, drive every round, join the clients.
fn serve_once(cfg: &SimulationConfig) -> (RunResult, ServingReport) {
    let server = BoundServer::bind("tcp://127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    let workers = data_member_indices(cfg);
    let split = workers.len() / 2;
    let halves: Vec<Vec<usize>> = vec![
        workers[..split].iter().map(|&w| w as usize).collect(),
        workers[split..].iter().map(|&w| w as usize).collect(),
    ];
    let clients: Vec<_> = halves
        .into_iter()
        .map(|ws| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_client(&addr, &ws, &ClientOptions::default()).expect("client run")
            })
        })
        .collect();
    let out = server.serve(cfg, &RoundPolicy::default()).expect("serve");
    for client in clients {
        client.join().expect("client thread");
    }
    out
}

fn summary_json(result: &RunResult) -> String {
    serde_json::to_string(&result.summary()).expect("summary serializes")
}

fn bench_serving_round(c: &mut Criterion) {
    let cfg =
        registry::get("serving/loopback_smoke").expect("registered").cells()[0].config.clone();

    // Parity guard (run once, before timing): the acceptance criterion of
    // the transport refactor, exercised over a real socket.
    let in_process = dpbfl::simulation::run(&cfg);
    let (served, report) = serve_once(&cfg);
    assert_eq!(
        summary_json(&served),
        summary_json(&in_process),
        "TCP loopback serving diverged from the in-process transport"
    );
    assert_eq!(report.dropped_uploads, 0, "loopback run dropped uploads");
    println!(
        "serving_round: {} rounds, p50 {:.2} ms, p99 {:.2} ms, {:.1} rounds/sec \
         (loopback TCP, {} clients)",
        report.rounds,
        report.p50_round_ms,
        report.p99_round_ms,
        report.rounds_per_sec,
        report.clients
    );

    let mut group = c.benchmark_group("serving_round");
    group.sample_size(10);
    group.bench_function("in_process", |b| {
        b.iter(|| std::hint::black_box(dpbfl::simulation::run(&cfg)))
    });
    group.bench_function("tcp_loopback", |b| b.iter(|| std::hint::black_box(serve_once(&cfg))));
    group.finish();
}

criterion_group!(benches, bench_serving_round);
criterion_main!(benches);
