//! End-to-end streaming-round throughput — the fold-over-uploads pipeline vs
//! the materialized reference, and the on-demand provisioning path behind
//! the `scale/*` scenarios.
//!
//! Before any timing, the bench **asserts** the bit-parity contract: the
//! streaming fold's `RunSummary` must serialize byte-identically to the
//! materialized pipeline's, and the on-demand path must be reproducible
//! run-to-run. Criterion's `--test` smoke mode runs this body in CI, so the
//! streaming refactor cannot silently drift from the reference pipeline.
//!
//! The wall time of one `run()` here covers a full round over a 64-upload
//! cohort (plus preparation and one evaluation); the printed uploads/sec
//! figure is the honest end-to-end number the README quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl::prelude::*;

/// Cohort folded per round: 48 honest + 16 Byzantine uploads.
const COHORT: usize = 64;

fn base_cfg() -> SimulationConfig {
    let mut cfg =
        SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::SmallMlp { hidden: 8 });
    cfg.per_worker = 64;
    cfg.test_count = 64;
    cfg.n_honest = 48;
    cfg.n_byzantine = 16;
    cfg.epochs = 0.25; // one round at b_c = 16
    cfg.epsilon = None;
    cfg.dp.noise_multiplier = 0.5;
    cfg.attack = AttackSpec::Gaussian;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.5;
    cfg
}

fn summary_json(cfg: &SimulationConfig) -> String {
    serde_json::to_string(&dpbfl::simulation::run(cfg).summary()).expect("summary serializes")
}

fn bench_fl_round_streaming(c: &mut Criterion) {
    let streaming = base_cfg();
    let mut materialized = base_cfg();
    materialized.defense_cfg.streaming_fold = false;
    let mut on_demand = base_cfg();
    on_demand.provisioning = Provisioning::OnDemand;

    // Parity guards (run once, before timing).
    assert_eq!(
        summary_json(&streaming),
        summary_json(&materialized),
        "streaming fold diverged from the materialized reference"
    );
    assert_eq!(
        summary_json(&on_demand),
        summary_json(&on_demand),
        "on-demand provisioning is not reproducible"
    );

    // The README's headline figure: end-to-end uploads/sec through the
    // streaming pipeline (cohort / wall time of one full run).
    let iters = 5;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(dpbfl::simulation::run(&streaming));
    }
    let per_run = t0.elapsed().as_secs_f64() / iters as f64;
    println!(
        "fl_round_streaming: ~{:.0} uploads/sec end to end \
         (cohort {COHORT}, 1 round, pooled streaming)",
        COHORT as f64 / per_run
    );

    let mut group = c.benchmark_group("fl_round_streaming");
    group.sample_size(10);
    group.bench_function("materialized", |b| {
        b.iter(|| std::hint::black_box(dpbfl::simulation::run(&materialized)))
    });
    group.bench_function("streaming", |b| {
        b.iter(|| std::hint::black_box(dpbfl::simulation::run(&streaming)))
    });
    group.bench_function("streaming_on_demand", |b| {
        b.iter(|| std::hint::black_box(dpbfl::simulation::run(&on_demand)))
    });
    group.finish();
}

criterion_group!(benches, bench_fl_round_streaming);
criterion_main!(benches);
