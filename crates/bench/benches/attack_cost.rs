//! Adversary-side synthesis cost for each crafted attack (the omniscient
//! attacker sees all benign uploads; how much work is each strategy?).

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl::attack::{craft_uploads, AttackContext, AttackSpec};
use dpbfl_stats::normal::gaussian_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_attacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_synthesis");
    group.sample_size(20);
    let d = 25_450;
    let mut rng = StdRng::seed_from_u64(1);
    let benign: Vec<Vec<f32>> = (0..10).map(|_| gaussian_vector(&mut rng, 0.05, d)).collect();

    for (name, spec) in [
        ("gaussian", AttackSpec::Gaussian),
        ("opt_lmp", AttackSpec::OptLmp),
        ("a_little", AttackSpec::ALittle),
        ("inner_product", AttackSpec::InnerProduct { scale: 5.0 }),
    ] {
        group.bench_function(name, |b| {
            let mut arng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let ctx = AttackContext {
                    benign_uploads: &benign,
                    d,
                    n_byzantine: 15,
                    noise_std: 0.05,
                    round: 0,
                    total_rounds: 100,
                    poisoned_uploads: &[],
                };
                std::hint::black_box(craft_uploads(&spec, &ctx, &mut arng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
