//! End-to-end federated round cost: a complete (broadcast → local steps →
//! attack → defense → update) iteration at several worker counts, defended
//! and undefended — the figure that says what a training run costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::prelude::*;

fn tiny(n_honest: usize, n_byz: usize, defended: bool) -> SimulationConfig {
    let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
    cfg.per_worker = 128;
    cfg.test_count = 16; // evaluation excluded from the hot loop as far as possible
    cfg.n_honest = n_honest;
    cfg.n_byzantine = n_byz;
    cfg.epochs = 16.0 / 128.0 * 2.0; // exactly 2 iterations
    cfg.epsilon = None;
    cfg.dp.noise_multiplier = 0.79;
    if n_byz > 0 {
        cfg.attack = AttackSpec::OptLmp;
    }
    if defended {
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = n_honest as f64 / (n_honest + n_byz) as f64;
    }
    cfg
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round");
    group.sample_size(10);
    for (n_honest, n_byz) in [(10usize, 0usize), (10, 15)] {
        for defended in [false, true] {
            if n_byz == 0 && defended {
                continue;
            }
            let cfg = tiny(n_honest, n_byz, defended);
            let label = format!(
                "h{n_honest}_b{n_byz}_{}",
                if defended { "two_stage" } else { "undefended" }
            );
            group.bench_function(BenchmarkId::new("two_iterations", label), |b| {
                b.iter(|| std::hint::black_box(dpbfl::simulation::run(&cfg)))
            });
        }
    }
    group.finish();
}

/// The rayon payoff: the same defended round forced onto 1 thread vs the
/// full pool. On an N-core host the `threads/auto` row should undercut
/// `threads/1` by ≳2× once N ≥ 4 (the per-worker local steps and the
/// per-upload first-stage tests are both embarrassingly parallel); the two
/// rows produce bit-identical simulation results either way, which
/// `simulation::tests::two_stage_identical_across_thread_counts` asserts.
fn bench_thread_scaling(c: &mut Criterion) {
    let auto_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let cfg = tiny(12, 12, true);
    let mut group = c.benchmark_group("fl_round_threads");
    group.sample_size(10);
    for (label, threads) in [("1".to_string(), 1), (format!("auto_{auto_threads}"), 0)] {
        // build() + install() rather than build_global(): upstream rayon
        // errors on a second build_global() call once the pool exists.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        group.bench_function(BenchmarkId::new("threads", label), |b| {
            pool.install(|| b.iter(|| std::hint::black_box(dpbfl::simulation::run(&cfg))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_thread_scaling);
criterion_main!(benches);
