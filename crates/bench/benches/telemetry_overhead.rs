//! Telemetry overhead on the end-to-end federated round — the cost of
//! observing a defended `fl_round`-style run through each sink, against
//! the null handle.
//!
//! Before any timing, the bench **asserts** the telemetry contract:
//!
//! 1. The `RunSummary` serializes byte-identically with the null handle,
//!    a `MemorySink`, and a `JsonlSink` — recording is pure observation.
//! 2. The JSONL-ledger run costs at most 5% more wall clock than the
//!    null-telemetry run (interleaved best-of-7, plus a small absolute
//!    slack so a noisy CI runner cannot fail a few-millisecond
//!    difference).
//!
//! Criterion's `--test` smoke mode runs this body in CI, so a sink that
//! starts perturbing results — or a producer that stops gating work on
//! `Telemetry::enabled` — fails the bench job, not just a benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The `fl_round` defended cell — 10 honest + 15 Byzantine OptLMP workers,
/// two-stage defense — run for 6 iterations: long enough that the one-time
/// cumulative-ε schedule build amortizes the way it does in real runs, so
/// the gate measures the *per-round* telemetry cost.
fn defended_cfg() -> SimulationConfig {
    let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
    cfg.per_worker = 128;
    cfg.test_count = 16;
    cfg.n_honest = 10;
    cfg.n_byzantine = 15;
    cfg.epochs = 16.0 / 128.0 * 6.0; // exactly 6 iterations
    cfg.epsilon = None;
    cfg.dp.noise_multiplier = 0.79;
    cfg.attack = AttackSpec::OptLmp;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.4;
    cfg
}

fn ledger_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dpbfl-telemetry-bench-{}.jsonl", std::process::id()))
}

fn run_with(cfg: &SimulationConfig, prep: &PreparedRun, tel: &Telemetry) -> RunResult {
    let result = run_prepared_telemetry(cfg, prep, tel);
    tel.flush().expect("ledger flush");
    result
}

fn summary_json(result: &RunResult) -> String {
    serde_json::to_string(&result.summary()).expect("summary serializes")
}

/// Best-of-`reps` wall time of `f` — the stablest point estimate a noisy
/// runner can give us for the overhead gate.
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed()
        })
        .min()
        .expect("at least one rep")
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let cfg = defended_cfg();
    let prep = dpbfl::simulation::prepare(&cfg);
    let path = ledger_path();

    // Contract guard 1: every sink is invisible in the summary.
    let baseline = summary_json(&run_with(&cfg, &prep, &Telemetry::null()));
    let memory = Arc::new(Mutex::new(MemorySink::default()));
    let with_memory =
        summary_json(&run_with(&cfg, &prep, &Telemetry::new(Box::new(Arc::clone(&memory)))));
    assert_eq!(with_memory, baseline, "MemorySink perturbed the run");
    assert_eq!(memory.lock().unwrap().rounds.len(), cfg.iterations());
    let with_jsonl = summary_json(&run_with(
        &cfg,
        &prep,
        &Telemetry::new(Box::new(JsonlSink::new(path.clone()))),
    ));
    assert_eq!(with_jsonl, baseline, "JsonlSink perturbed the run");

    // Contract guard 2: the JSONL ledger costs ≤ 5% over null telemetry
    // (plus 10 ms absolute slack for scheduler noise). The reps interleave
    // the two paths so machine-load drift across the measurement window
    // biases both minima equally instead of whichever batch ran second.
    let reps = 7;
    let mut null_best = Duration::MAX;
    let mut jsonl_best = Duration::MAX;
    for _ in 0..reps {
        null_best = null_best.min(best_of(1, || {
            std::hint::black_box(run_with(&cfg, &prep, &Telemetry::null()));
        }));
        jsonl_best = jsonl_best.min(best_of(1, || {
            let tel = Telemetry::new(Box::new(JsonlSink::new(path.clone())));
            std::hint::black_box(run_with(&cfg, &prep, &tel));
        }));
    }
    let budget = null_best.mul_f64(1.05) + Duration::from_millis(10);
    println!(
        "telemetry_overhead: null {:.1} ms, jsonl {:.1} ms (budget {:.1} ms)",
        null_best.as_secs_f64() * 1e3,
        jsonl_best.as_secs_f64() * 1e3,
        budget.as_secs_f64() * 1e3,
    );
    assert!(
        jsonl_best <= budget,
        "JSONL telemetry overhead over budget: {jsonl_best:?} vs null {null_best:?}"
    );
    std::fs::remove_file(&path).ok();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("null", |b| {
        b.iter(|| std::hint::black_box(run_with(&cfg, &prep, &Telemetry::null())))
    });
    group.bench_function("memory", |b| {
        b.iter(|| {
            let tel = Telemetry::new(Box::new(MemorySink::default()));
            std::hint::black_box(run_with(&cfg, &prep, &tel))
        })
    });
    group.bench_function("jsonl", |b| {
        b.iter(|| {
            let tel = Telemetry::new(Box::new(JsonlSink::new(ledger_path())));
            std::hint::black_box(run_with(&cfg, &prep, &tel))
        })
    });
    group.finish();
    std::fs::remove_file(ledger_path()).ok();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
