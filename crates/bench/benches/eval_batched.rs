//! Batched vs per-example evaluation forward passes — the payoff of the
//! batched inference subsystem on the server's eval path (`nn::accuracy`),
//! measured for every zoo architecture.
//!
//! The batched path is bit-identical to the per-example path (asserted in
//! `crates/nn/tests/batched_parity.rs` and sanity-checked here), so the whole
//! difference is mechanical: one GEMM / im2col pass per layer per batch
//! instead of per-layer allocation + dispatch per example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl_nn::{accuracy, zoo, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic pseudo-random features.
fn fill(count: usize, len: usize, salt: u32) -> Vec<f32> {
    (0..count * len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h % 1000) as f32 / 1000.0) - 0.5
        })
        .collect()
}

/// The pre-batching implementation of `accuracy`, kept as the baseline.
fn accuracy_per_example(model: &mut Sequential, features: &[f32], labels: &[usize]) -> f64 {
    let example_len = model.input_len();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let x = &features[i * example_len..(i + 1) * example_len];
        if model.predict(x) == label {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_batched");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let count = 128usize;

    let models: Vec<(&str, Sequential)> = vec![
        ("mlp_784", zoo::mlp_784(&mut rng)),
        ("mnist_cnn", zoo::mnist_cnn(&mut rng)),
        ("colorectal_cnn", zoo::colorectal_cnn(&mut rng)),
    ];
    for (name, mut model) in models {
        let features = fill(count, model.input_len(), 5);
        let labels: Vec<usize> = (0..count).map(|i| (i * 3) % model.output_len()).collect();
        // The two paths must agree exactly before we time them.
        assert_eq!(
            accuracy(&mut model, &features, &labels).to_bits(),
            accuracy_per_example(&mut model, &features, &labels).to_bits(),
            "{name}: batched accuracy diverged from per-example"
        );
        group.bench_function(BenchmarkId::new("per_example", name), |b| {
            b.iter(|| std::hint::black_box(accuracy_per_example(&mut model, &features, &labels)))
        });
        group.bench_function(BenchmarkId::new("batched", name), |b| {
            b.iter(|| std::hint::black_box(accuracy(&mut model, &features, &labels)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
