//! Privacy-accounting cost: one RDP curve evaluation and the full bisection
//! search for σ — the pre-training calibration every worker performs once.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbfl_dp::{compose_rdp, default_orders, paper_delta, RdpAccountant};

fn bench_accountant(c: &mut Criterion) {
    let mut group = c.benchmark_group("accountant");
    group.sample_size(20);
    let q = 16.0 / 3000.0;
    let steps = 1500u64;
    let orders = default_orders();
    let delta = paper_delta(3000);

    group.bench_function("rdp_curve", |b| {
        b.iter(|| std::hint::black_box(compose_rdp(q, 0.79, steps, &orders)))
    });
    group.bench_function("epsilon_report", |b| {
        let acc = RdpAccountant::new(q, steps);
        b.iter(|| std::hint::black_box(acc.epsilon(0.79, delta)))
    });
    group.bench_function("noise_multiplier_search", |b| {
        let acc = RdpAccountant::new(q, steps);
        b.iter(|| std::hint::black_box(acc.find_noise_multiplier(2.0, delta)))
    });
    group.finish();
}

criterion_group!(benches, bench_accountant);
criterion_main!(benches);
