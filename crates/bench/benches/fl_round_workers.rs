//! Server-side defense cost scaling with the cohort size `n` — the question
//! "what does a round cost the server once worker counts grow past 10³?"
//! (ROADMAP "Parallelism next steps").
//!
//! Two stages dominate: the per-upload first-stage tests (KS sort, O(d log d)
//! each) and the second-stage scoring, now one n×d matrix–vector product
//! against `g_s` instead of n serial dots. The scoring rows run at
//! n ∈ {10, 100, 1000} with the paper's MLP dimension d = 25 450; the
//! KS-dominated first stage is capped at n ≤ 100 to keep the smoke run fast
//! (it scales linearly in n by construction — one independent test per
//! upload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::first_stage::FirstStage;
use dpbfl::second_stage::SecondStage;
use dpbfl_stats::normal::gaussian_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 25_450;
const NOISE_STD: f64 = 0.05;

fn uploads(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gaussian_vector(&mut rng, NOISE_STD, D)).collect()
}

fn bench_second_stage_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round_workers");
    group.sample_size(10);
    let server_grad = gaussian_vector(&mut StdRng::seed_from_u64(7), NOISE_STD, D);

    for n in [10usize, 100, 1000] {
        let ups = uploads(n, n as u64);
        let mut stage = SecondStage::new(n, 0.5);
        group.bench_function(BenchmarkId::new("second_stage_select", n), |b| {
            b.iter(|| std::hint::black_box(stage.select(&ups, &server_grad)))
        });
    }

    for n in [10usize, 100] {
        let ups = uploads(n, 1000 + n as u64);
        let first = FirstStage::new(NOISE_STD, D, 0.05, 3.0);
        group.bench_function(BenchmarkId::new("first_stage_check", n), |b| {
            b.iter(|| {
                for u in &ups {
                    std::hint::black_box(first.check(u));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_second_stage_scaling);
criterion_main!(benches);
