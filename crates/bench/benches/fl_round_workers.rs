//! Server-side defense cost scaling with the cohort size `n` — the question
//! "what does a round cost the server once worker counts grow past 10³?"
//! (ROADMAP "Parallelism next steps").
//!
//! The second stage is one n×d matrix–vector product; the first stage used
//! to sort all d coordinates per upload (O(d log d), ~3 ms at d = 25 450 —
//! ~3 s of serial work per 1 000-worker round) and now runs the sort-free KS
//! screen with a sorted fallback only inside the critical band, which makes
//! the n = 1 000 first-stage row affordable to measure directly.
//!
//! A smoke assertion guards the fast path: if the screen regresses to the
//! sorted fallback on benign uploads (the common case), the bench body —
//! which CI runs in `--test` mode — panics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbfl::first_stage::{FirstStage, KsScratch};
use dpbfl::second_stage::SecondStage;
use dpbfl_stats::ks::KsScreenVerdict;
use dpbfl_stats::normal::gaussian_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 25_450;
const NOISE_STD: f64 = 0.05;

fn uploads(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gaussian_vector(&mut rng, NOISE_STD, D)).collect()
}

fn bench_second_stage_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round_workers");
    group.sample_size(10);
    let server_grad = gaussian_vector(&mut StdRng::seed_from_u64(7), NOISE_STD, D);

    for n in [10usize, 100, 1000] {
        let ups = uploads(n, n as u64);
        let mut stage = SecondStage::new(n, 0.5);
        group.bench_function(BenchmarkId::new("second_stage_select", n), |b| {
            b.iter(|| std::hint::black_box(stage.select(&ups, &server_grad)))
        });
    }

    let first = FirstStage::new(NOISE_STD, D, 0.05, 3.0);
    // Smoke assertion: benign uploads must overwhelmingly be decided by the
    // one-pass screen. A fallback rate above 30 % means the fast path has
    // silently regressed to the sorted path.
    {
        let ups = uploads(100, 1100);
        let mut scratch = KsScratch::new();
        let fallbacks = ups
            .iter()
            .filter(|u| first.ks_screen().screen(u, &mut scratch) == KsScreenVerdict::Borderline)
            .count();
        assert!(
            fallbacks <= 30,
            "fast path regressed to sorting: {fallbacks}/100 benign uploads fell back"
        );
    }
    for n in [10usize, 100, 1000] {
        let ups = uploads(n, 1000 + n as u64);
        let mut scratch = KsScratch::new();
        group.bench_function(BenchmarkId::new("first_stage_check", n), |b| {
            b.iter(|| {
                for u in &ups {
                    std::hint::black_box(first.check_with(u, &mut scratch));
                }
            })
        });
    }
    // The before number, for the README speedup row (kept at n = 100 so the
    // sorted path doesn't dominate the whole suite's wall time).
    {
        let ups = uploads(100, 1100);
        group.bench_function(BenchmarkId::new("first_stage_check_reference", 100), |b| {
            b.iter(|| {
                for u in &ups {
                    std::hint::black_box(first.check_reference(u));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_second_stage_scaling);
criterion_main!(benches);
