//! # dpbfl-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6 and supp. A.6). Each binary in `src/bin/` reproduces one
//! artifact and prints paper-shaped rows next to the paper's reported numbers.
//!
//! ## Scale
//!
//! The paper burned ~600 GPU-hours; this harness defaults to **reduced
//! scale** (smaller per-worker datasets, fewer epochs and seeds) chosen so
//! every qualitative conclusion — who wins, the ordering across ε, where the
//! crossovers sit — is preserved on a laptop-class CPU. Set `DPBFL_FULL=1`
//! for paper-scale parameters (20 honest workers, |Dᵢ| matching the real
//! dataset splits, 8–10 epochs, seeds {1, 2, 3}).
//!
//! Results are appended as JSON under `results/` for provenance.

use dpbfl::prelude::*;
use dpbfl_stats::RunningMoments;
use serde::Serialize;
use std::io::Write as _;

/// The paper's ε grid (Figure 1's x-axis).
pub const EPSILONS: [f64; 5] = [0.125, 0.25, 0.5, 1.0, 2.0];

/// Experiment scale parameters.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Examples per worker for the MLP datasets.
    pub per_worker: usize,
    /// Examples per worker for the Colorectal-like CNN runs.
    pub per_worker_colorectal: usize,
    /// Honest worker count for MNIST/Fashion-like runs (paper: 20).
    pub n_honest_large: usize,
    /// Honest worker count for Colorectal/USPS-like runs (paper: 10).
    pub n_honest_small: usize,
    /// Epochs for MNIST/Fashion (paper: 8).
    pub epochs_large: f64,
    /// Epochs for Colorectal/USPS (paper: 10).
    pub epochs_small: f64,
    /// Test-set size.
    pub test_count: usize,
    /// Random seeds (paper: {1, 2, 3}).
    pub seeds: Vec<u64>,
    /// True when running at paper scale.
    pub full: bool,
}

impl Scale {
    /// Reads the scale from the environment (`DPBFL_FULL=1` for paper
    /// scale).
    pub fn from_env() -> Self {
        if std::env::var("DPBFL_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale {
                per_worker: 3000,
                per_worker_colorectal: 460,
                n_honest_large: 20,
                n_honest_small: 10,
                epochs_large: 8.0,
                epochs_small: 10.0,
                test_count: 2000,
                seeds: vec![1, 2, 3],
                full: true,
            }
        } else {
            Scale {
                per_worker: 500,
                per_worker_colorectal: 200,
                n_honest_large: 10,
                n_honest_small: 8,
                epochs_large: 6.0,
                epochs_small: 3.0,
                test_count: 400,
                seeds: vec![1],
                full: false,
            }
        }
    }

    /// Base configuration for a named dataset family.
    ///
    /// Known names: `mnist`, `fashion`, `usps`, `colorectal`.
    pub fn config(&self, dataset: &str) -> SimulationConfig {
        let (spec, model, per_worker, n_honest, epochs) = match dataset {
            "mnist" => (
                SyntheticSpec::mnist_like(),
                ModelKind::Mlp784,
                self.per_worker,
                self.n_honest_large,
                self.epochs_large,
            ),
            "fashion" => (
                SyntheticSpec::fashion_like(),
                ModelKind::Mlp784,
                self.per_worker,
                self.n_honest_large,
                self.epochs_large,
            ),
            "usps" => (
                SyntheticSpec::usps_like(),
                ModelKind::Mlp784,
                self.per_worker,
                self.n_honest_small,
                self.epochs_small.max(4.0),
            ),
            "colorectal" => (
                SyntheticSpec::colorectal_like(),
                ModelKind::ColorectalCnn,
                self.per_worker_colorectal,
                self.n_honest_small,
                self.epochs_small,
            ),
            other => panic!("unknown dataset {other:?} (use mnist|fashion|usps|colorectal)"),
        };
        let mut cfg = SimulationConfig::quick(spec, model);
        cfg.per_worker = per_worker;
        cfg.n_honest = n_honest;
        cfg.epochs = epochs;
        cfg.test_count = self.test_count;
        cfg
    }
}

/// Mean/min/max accuracy across seeds (the paper reports exactly these).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Mean accuracy over seeds.
    pub mean: f64,
    /// Minimum over seeds.
    pub min: f64,
    /// Maximum over seeds.
    pub max: f64,
    /// Noise multiplier used (same across seeds).
    pub sigma: f64,
}

/// Runs `cfg` once per seed and summarizes the final accuracy.
pub fn run_seeds(cfg: &SimulationConfig, seeds: &[u64]) -> Summary {
    let mut acc = RunningMoments::new();
    let mut sigma = 0.0;
    for &seed in seeds {
        let mut c = cfg.clone();
        c.seed = seed;
        let r = dpbfl::simulation::run(&c);
        acc.push(r.final_accuracy);
        sigma = r.sigma;
    }
    Summary { mean: acc.mean(), min: acc.min(), max: acc.max(), sigma }
}

/// Runs `cfg` once per seed and returns the mean accuracy trajectory
/// (aligned across seeds by evaluation index).
pub fn run_seeds_history(cfg: &SimulationConfig, seeds: &[u64]) -> Vec<EvalPoint> {
    let mut histories: Vec<Vec<EvalPoint>> = Vec::new();
    for &seed in seeds {
        let mut c = cfg.clone();
        c.seed = seed;
        histories.push(dpbfl::simulation::run(&c).history);
    }
    let len = histories.iter().map(|h| h.len()).min().unwrap_or(0);
    (0..len)
        .map(|i| {
            let mean_acc =
                histories.iter().map(|h| h[i].accuracy).sum::<f64>() / histories.len() as f64;
            EvalPoint {
                iteration: histories[0][i].iteration,
                epoch: histories[0][i].epoch,
                accuracy: mean_acc,
            }
        })
        .collect()
}

/// Distinct labels one swept axis takes across a grid's results, in
/// first-appearance order — the row/column sets of a registry-backed paper
/// table.
pub fn distinct_axis_labels(
    results: &[(dpbfl_harness::Cell, RunResult)],
    axis: &str,
) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for (cell, _) in results {
        if let Some(label) = cell.axis(axis) {
            if !seen.iter().any(|s| s == label) {
                seen.push(label.to_string());
            }
        }
    }
    seen
}

/// Prints a Markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Appends an experiment record to `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // results persistence is best-effort
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = f.write_all(s.as_bytes());
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Formats an accuracy as the paper does (e.g. `.86 ± .010`).
pub fn fmt_acc(s: &Summary) -> String {
    let spread = ((s.max - s.min) / 2.0).max(0.0);
    if spread > 0.0005 {
        format!("{:.2} ± {:.3}", s.mean, spread)
    } else {
        format!("{:.2}", s.mean)
    }
}

/// Parses `--flag value`-style arguments (tiny, no external deps).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// True when `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// The value following `--name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.raw.windows(2).find(|w| w[0] == key).map(|w| w[1].as_str())
    }

    /// Comma-separated list following `--name`, or the default.
    pub fn list<'a>(&'a self, name: &str, default: &'a str) -> Vec<&'a str> {
        self.value(name).unwrap_or(default).split(',').collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_config_builds_every_dataset() {
        let s = Scale::from_env();
        for name in ["mnist", "fashion", "usps", "colorectal"] {
            let cfg = s.config(name);
            assert!(cfg.per_worker > 0);
            assert!(cfg.iterations() > 0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = Scale::from_env().config("imagenet");
    }

    #[test]
    fn fmt_acc_formats_spread() {
        let s = Summary { mean: 0.86, min: 0.85, max: 0.87, sigma: 1.0 };
        assert_eq!(fmt_acc(&s), "0.86 ± 0.010");
        let t = Summary { mean: 0.5, min: 0.5, max: 0.5, sigma: 1.0 };
        assert_eq!(fmt_acc(&t), "0.50");
    }
}
