//! Figure 4: convergence curves (test accuracy per epoch) under label-flip
//! at 20 % and 60 % Byzantine, ε = 1, vs the Reference Accuracy curve.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin fig4_convergence [--datasets ...]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{print_table, run_seeds_history, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    dataset: String,
    byz_pct: usize,
    series: Vec<(f64, f64)>, // (epoch, accuracy)
    reference: Vec<(f64, f64)>,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let datasets = args.list(
        "datasets",
        if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist,fashion" },
    );

    let mut curves = Vec::new();
    for dataset in &datasets {
        for byz_pct in [20usize, 60] {
            let mut cfg = scale.config(dataset);
            cfg.epsilon = Some(1.0);
            cfg.n_byzantine =
                (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64)).round() as usize;
            cfg.attack = AttackSpec::LabelFlip;
            cfg.defense = DefenseKind::TwoStage;
            cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
            let ours = run_seeds_history(&cfg, &scale.seeds);

            let mut ra_cfg = scale.config(dataset);
            ra_cfg.epsilon = Some(1.0);
            let ra = run_seeds_history(&ra_cfg, &scale.seeds);

            let rows: Vec<Vec<String>> = ours
                .iter()
                .zip(&ra)
                .map(|(o, r)| {
                    vec![
                        format!("{:.1}", o.epoch),
                        format!("{:.3}", o.accuracy),
                        format!("{:.3}", r.accuracy),
                    ]
                })
                .collect();
            print_table(
                &format!("Figure 4 [{dataset}, {byz_pct}% label-flip, ε=1]"),
                &["epoch", "ours", "Reference Acc."],
                &rows,
            );
            curves.push(Curve {
                dataset: dataset.to_string(),
                byz_pct,
                series: ours.iter().map(|p| (p.epoch, p.accuracy)).collect(),
                reference: ra.iter().map(|p| (p.epoch, p.accuracy)).collect(),
            });
        }
    }
    println!(
        "\nPaper shape (Fig. 4): training converges within the first few epochs and\n\
         the attacked curve hugs the Reference Accuracy curve at both 20% and 60%."
    );
    save_json("fig4_convergence", &curves);
}
