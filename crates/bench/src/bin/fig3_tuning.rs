//! Figure 3 (and supp. Figures 20/23/26/29/32): the hyper-parameter tuning
//! claim — with `η = η_b·σ_b/σ`, the *optimal base learning rate* is the same
//! at every privacy level, so tuning once at ε = 2 transfers everywhere.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin fig3_tuning
//!     [--attack label-flip|gaussian|opt-lmp] [--datasets mnist] [--non-iid]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

/// The paper's base-learning-rate sweep.
const BASE_LRS: [f64; 7] = [0.02, 0.04, 0.08, 0.2, 0.4, 0.8, 1.0];

#[derive(Serialize)]
struct Record {
    dataset: String,
    epsilon: f64,
    base_lr: f64,
    accuracy: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack = match args.value("attack").unwrap_or("label-flip") {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    };
    let datasets = args.list("datasets", "mnist");
    let iid = !args.flag("non-iid");
    let epsilons: Vec<f64> = if scale.full { vec![2.0, 0.5, 0.125] } else { vec![2.0, 0.5] };
    let lrs: Vec<f64> = if scale.full { BASE_LRS.to_vec() } else { vec![0.02, 0.08, 0.2, 0.8] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        let mut argmax_per_eps = Vec::new();
        for &eps in &epsilons {
            let mut row = vec![format!("ε={eps}")];
            let mut best = (0.0f64, 0.0f64);
            for &lr in &lrs {
                let mut cfg = scale.config(dataset);
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                cfg.base_lr = lr; // internally scaled by σ_b/σ
                cfg.n_byzantine = (cfg.n_honest as f64 * 1.5).round() as usize; // 60 %
                cfg.attack = attack.clone();
                cfg.defense = DefenseKind::TwoStage;
                cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
                let s = run_seeds(&cfg, &scale.seeds);
                if s.mean > best.0 {
                    best = (s.mean, lr);
                }
                row.push(format!("{:.3}", s.mean));
                records.push(Record {
                    dataset: dataset.to_string(),
                    epsilon: eps,
                    base_lr: lr,
                    accuracy: s.mean,
                });
            }
            argmax_per_eps.push((eps, best.1));
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["privacy".into()];
        headers.extend(lrs.iter().map(|l| format!("η_b={l}")));
        let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        print_table(
            &format!("Figure 3 [{dataset}, 60% {}]: accuracy vs base lr", attack.name()),
            &headers_ref,
            &rows,
        );
        println!("\nOptimal η_b per ε: {argmax_per_eps:?}");
        println!(
            "Paper shape (Fig. 3): the argmax base lr is the SAME across privacy\n\
             levels (0.2 for MNIST), validating η = η_b·σ_b/σ."
        );
    }
    save_json("fig3_tuning", &records);
}
