//! Table 4: the "side-effect" test — 60 % of workers are *declared*
//! Byzantine but behave honestly; the server still runs the full defense
//! with its conservative belief γ = 40 %. The protocol should track the
//! Reference Accuracy, i.e. the medicine must not harm a healthy patient.
//!
//! Thin wrapper over the registry: the defended grid is
//! `paper/table4_side_effect`, the Reference Accuracy rows are the matching
//! ε cells of `paper/reference` — both exist exactly once, in
//! `dpbfl_harness::registry`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table4_side_effect
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    epsilon: String,
    reference: f64,
    zero_attackers: f64,
}

fn main() {
    let spec = registry::get("paper/table4_side_effect").expect("built-in scenario");
    let defended = run_scenario_in_memory(&spec);
    let reference_spec = registry::get("paper/reference").expect("built-in scenario");
    let reference_cells = reference_spec.cells();

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (cell, result) in &defended {
        let epsilon = cell.axis("epsilon").expect("epsilon axis is swept").to_string();
        let ra_cell = reference_cells
            .iter()
            .find(|c| c.config.epsilon == cell.config.epsilon)
            .expect("paper/reference sweeps every Table-4 ε");
        let ra = dpbfl::simulation::run(&ra_cell.config).final_accuracy;
        rows.push(vec![
            format!("{epsilon}"),
            format!("{ra:.3}"),
            format!("{:.3}", result.final_accuracy),
            format!("{:+.3}", result.final_accuracy - ra),
        ]);
        records.push(Record { epsilon, reference: ra, zero_attackers: result.final_accuracy });
    }
    print_table(
        "Table 4: side-effect test (defense on, zero actual attackers)",
        &["ε", "Reference Acc. (RA)", "zero (defended)", "gap"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 4): 'zero' matches RA at every ε except the extreme\n\
         budgets, where DP noise itself destabilizes training."
    );
    save_json("table4_side_effect", &records);
}
