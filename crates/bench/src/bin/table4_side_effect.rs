//! Table 4: the "side-effect" test — 60 % of workers are *declared*
//! Byzantine but behave honestly; the server still runs the full defense
//! with its conservative belief γ = 40 %. The protocol should track the
//! Reference Accuracy, i.e. the medicine must not harm a healthy patient.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table4_side_effect [--datasets ...]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    epsilon: f64,
    reference: f64,
    zero_attackers: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let datasets = args.list(
        "datasets",
        if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist,fashion" },
    );
    let epsilons: Vec<f64> = if scale.full { vec![0.125, 0.5, 2.0] } else { vec![0.5, 2.0] };

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for dataset in &datasets {
        for &eps in &epsilons {
            // Reference Accuracy: DP only.
            let mut ra_cfg = scale.config(dataset);
            ra_cfg.epsilon = Some(eps);
            let ra = run_seeds(&ra_cfg, &scale.seeds);

            // "zero": the 60% extra workers are honest too, but the server
            // still defends believing only 40% are honest. All workers run
            // the honest protocol, so the honest pool is n_honest + "byz".
            let mut cfg = scale.config(dataset);
            cfg.epsilon = Some(eps);
            let extra = (cfg.n_honest as f64 * 1.5).round() as usize;
            cfg.n_honest += extra; // everyone is honest
            cfg.attack = AttackSpec::None;
            cfg.n_byzantine = 0;
            cfg.defense = DefenseKind::TwoStage;
            cfg.defense_cfg.gamma = 0.4; // the server's (wrong) belief
            let zero = run_seeds(&cfg, &scale.seeds);

            rows.push(vec![
                dataset.to_string(),
                format!("{eps}"),
                format!("{:.3}", ra.mean),
                format!("{:.3}", zero.mean),
                format!("{:+.3}", zero.mean - ra.mean),
            ]);
            records.push(Record {
                dataset: dataset.to_string(),
                epsilon: eps,
                reference: ra.mean,
                zero_attackers: zero.mean,
            });
        }
    }
    print_table(
        "Table 4: side-effect test (defense on, zero actual attackers)",
        &["dataset", "ε", "Reference Acc. (RA)", "zero (defended)", "gap"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 4): 'zero' matches RA at every ε except the extreme\n\
         ε = 0.125, where DP noise itself destabilizes training."
    );
    save_json("table4_side_effect", &records);
}
