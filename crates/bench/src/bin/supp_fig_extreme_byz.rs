//! Supp. Figures 6–17: the extreme-majority grids — 95 % and 99 % of all
//! workers Byzantine, across attacks and privacy levels.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin supp_fig_extreme_byz
//!     [--attack label-flip|gaussian|opt-lmp] [--datasets mnist]
//!     [--byz 95,99] [--non-iid]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    attack: String,
    byz_pct: usize,
    epsilon: f64,
    ours: f64,
    reference: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack_name = args.value("attack").unwrap_or("label-flip").to_string();
    let attack = match attack_name.as_str() {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    };
    let datasets = args.list("datasets", "mnist");
    let byz_list: Vec<usize> = args
        .list("byz", if scale.full { "95,99" } else { "95" })
        .iter()
        .map(|s| s.parse().expect("--byz integers"))
        .collect();
    let iid = !args.flag("non-iid");
    let epsilons: Vec<f64> = if scale.full { vec![0.125, 0.5, 2.0] } else { vec![2.0] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        for &byz_pct in &byz_list {
            for &eps in &epsilons {
                let mut cfg = scale.config(dataset);
                // 99 % Byzantine means 99 workers per honest one — cap the
                // honest pool so the grid stays tractable.
                cfg.n_honest = if byz_pct >= 99 { 3 } else { (cfg.n_honest / 2).max(4) };
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                cfg.n_byzantine = (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64))
                    .round() as usize;
                cfg.attack = attack.clone();
                cfg.defense = DefenseKind::TwoStage;
                cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
                let ours = run_seeds(&cfg, &scale.seeds);

                let mut ra_cfg = scale.config(dataset);
                ra_cfg.iid = iid;
                ra_cfg.epsilon = Some(eps);
                let ra = run_seeds(&ra_cfg, &scale.seeds);

                rows.push(vec![
                    format!("{byz_pct}%"),
                    format!("{eps}"),
                    format!("{}", cfg.n_total()),
                    fmt_acc(&ours),
                    fmt_acc(&ra),
                ]);
                records.push(Record {
                    dataset: dataset.to_string(),
                    attack: attack_name.clone(),
                    byz_pct,
                    epsilon: eps,
                    ours: ours.mean,
                    reference: ra.mean,
                });
            }
        }
        print_table(
            &format!("Supp. Figs 6–17 [{dataset}, {attack_name}]: extreme Byzantine majorities"),
            &["byz", "ε", "total workers", "ours", "Reference Acc."],
            &rows,
        );
    }
    println!(
        "\nPaper shape (supp. Figs 6–17): robustness persists at ε = 2 even with\n\
         95–99% Byzantine workers; utility decays at stronger privacy levels."
    );
    save_json(&format!("supp_extreme_byz_{attack_name}"), &records);
}
