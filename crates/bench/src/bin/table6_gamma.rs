//! Table 6 (and supp. Tables 10–14): γ-belief ablation — the truth is that
//! 50 % of workers are honest; the server's belief γ sweeps 20–80 %.
//! Conservative beliefs (γ ≤ truth) must keep robustness; radical beliefs
//! (γ > truth) aggregate malicious uploads and pay in accuracy.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table6_gamma
//!     [--attack label-flip|gaussian|opt-lmp] [--datasets ...] [--non-iid]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    attack: String,
    gamma: f64,
    epsilon: f64,
    accuracy: f64,
    iid: bool,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack_name = args.value("attack").unwrap_or("label-flip").to_string();
    let attack = match attack_name.as_str() {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    };
    let datasets =
        args.list("datasets", if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist" });
    let iid = !args.flag("non-iid");
    let gammas: Vec<f64> =
        if scale.full { vec![0.2, 0.35, 0.5, 0.65, 0.8] } else { vec![0.2, 0.5, 0.8] };
    let epsilons: Vec<f64> = if scale.full { vec![0.125, 2.0] } else { vec![2.0] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        for &gamma in &gammas {
            let mut row = vec![if (gamma - 0.5).abs() < 1e-9 {
                "50% (exact)".to_string()
            } else {
                format!("{:.0}%", gamma * 100.0)
            }];
            for &eps in &epsilons {
                let mut cfg = scale.config(dataset);
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                cfg.n_byzantine = cfg.n_honest; // truth: exactly 50 % honest
                cfg.attack = attack.clone();
                cfg.defense = DefenseKind::TwoStage;
                cfg.defense_cfg.gamma = gamma;
                let s = run_seeds(&cfg, &scale.seeds);
                row.push(fmt_acc(&s));
                records.push(Record {
                    dataset: dataset.to_string(),
                    attack: attack_name.clone(),
                    gamma,
                    epsilon: eps,
                    accuracy: s.mean,
                    iid,
                });
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["γ belief".into()];
        headers.extend(epsilons.iter().map(|e| format!("ε={e}")));
        let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        print_table(
            &format!(
                "Table 6 [{dataset}, {attack_name}, {}; truth = 50% honest]",
                if iid { "iid" } else { "non-iid" }
            ),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\nPaper shape (Table 6): accuracy is flat for γ ≤ 50% (conservative) and\n\
         degrades for γ ∈ {{65%, 80%}} (radical), most visibly at ε = 0.125."
    );
    save_json(&format!("table6_gamma_{attack_name}"), &records);
}
