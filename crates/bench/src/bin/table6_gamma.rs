//! Table 6 (and supp. Tables 10–14): γ-belief ablation — the truth is that
//! 50 % of workers are honest; the server's belief γ sweeps 20–80 % across
//! privacy levels. Conservative beliefs (γ ≤ truth) must keep robustness;
//! radical beliefs (γ > truth) aggregate malicious uploads and pay in
//! accuracy.
//!
//! Thin wrapper over the registry's `paper/table6_gamma` scenario: the γ × ε
//! grid exists exactly once, in `dpbfl_harness::registry`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table6_gamma
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    gamma: String,
    epsilon: String,
    accuracy: f64,
}

fn main() {
    let spec = registry::get("paper/table6_gamma").expect("built-in scenario");
    let results = run_scenario_in_memory(&spec);

    let mut records = Vec::new();
    for (cell, result) in &results {
        records.push(Record {
            gamma: cell.axis("gamma").expect("gamma axis is swept").to_string(),
            epsilon: cell.axis("epsilon").expect("epsilon axis is swept").to_string(),
            accuracy: result.final_accuracy,
        });
    }

    // Rows: γ beliefs; columns: ε (the grid expands ε innermost).
    let gammas = dpbfl_bench::distinct_axis_labels(&results, "gamma");
    let epsilons = dpbfl_bench::distinct_axis_labels(&results, "epsilon");
    let rows: Vec<Vec<String>> = gammas
        .iter()
        .map(|g| {
            let mut row = vec![if g == "0.5" { "50% (exact)".into() } else { g.to_string() }];
            for e in &epsilons {
                let acc = records
                    .iter()
                    .find(|r| &r.gamma == g && &r.epsilon == e)
                    .map(|r| r.accuracy)
                    .expect("full grid");
                row.push(format!("{acc:.3}"));
            }
            row
        })
        .collect();
    let mut headers: Vec<String> = vec!["γ belief".into()];
    headers.extend(epsilons.iter().map(|e| format!("ε={e}")));
    let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    print_table(&spec.title, &headers_ref, &rows);
    println!(
        "\nPaper shape (Table 6): accuracy is flat for γ ≤ 50% (conservative) and\n\
         degrades for γ ∈ {{65%, 80%}} (radical), most visibly at tight ε."
    );
    save_json("table6_gamma", &records);
}
