//! Design-choice ablation (paper §4.5 "Novelties" and §4.7): each of the
//! protocol's deliberate choices is flipped in isolation at 60 % label-flip,
//! plus the FLTrust prior-work comparator. Measures what each choice buys.
//!
//! | variant | paper's claim |
//! |---|---|
//! | cosine scoring | inner product carries Eq. 7's bound; cosine does not |
//! | proportional weights | real-valued weights + DP noise ⇒ biased update |
//! | second stage only | one selected arbitrary upload can destroy the model |
//! | momentum kept (no reset) | line 11's reset is what the paper runs |
//! | selected-count step | Algorithm 1 line 14 divides by n |
//! | FLTrust | cosine + real weights + no DP-awareness |
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin ablation_design_choices [--dataset mnist]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    variant: String,
    accuracy: f64,
    reference: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let dataset = args.value("dataset").unwrap_or("mnist");

    let base = || {
        let mut cfg = scale.config(dataset);
        cfg.epsilon = Some(1.0);
        cfg.n_byzantine = (cfg.n_honest as f64 * 1.5).round() as usize; // 60 %
        cfg.attack = AttackSpec::LabelFlip;
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
        cfg
    };
    let reference = {
        let mut cfg = scale.config(dataset);
        cfg.epsilon = Some(1.0);
        run_seeds(&cfg, &scale.seeds).mean
    };

    let variants: Vec<(&str, SimulationConfig)> = vec![
        ("full protocol (paper)", base()),
        ("scoring: cosine instead of inner product", {
            let mut c = base();
            c.defense_cfg.scoring = ScoringRule::Cosine;
            c
        }),
        ("weights: proportional instead of binary", {
            let mut c = base();
            c.defense_cfg.weighting = WeightScheme::Proportional;
            c
        }),
        ("first stage disabled (second stage only)", {
            let mut c = base();
            c.defense_cfg.first_stage_enabled = false;
            c
        }),
        ("second stage disabled (first stage only)", {
            let mut c = base();
            // γ = 1 selects every upload: only the first stage filters.
            c.defense_cfg.gamma = 1.0;
            c
        }),
        ("momentum kept across rounds (no line-11 reset)", {
            let mut c = base();
            c.dp.momentum_reset = MomentumReset::Keep;
            c
        }),
        ("step normalized by |selected| instead of n", {
            let mut c = base();
            c.defense_cfg.step_normalization = StepNormalization::SelectedCount;
            c
        }),
        ("FLTrust (prior auxiliary-data defense)", {
            let mut c = base();
            c.defense = DefenseKind::FlTrust;
            c
        }),
    ];

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let s = run_seeds(&cfg, &scale.seeds);
        rows.push(vec![name.to_string(), fmt_acc(&s), format!("{:+.3}", s.mean - reference)]);
        records.push(Record { variant: name.to_string(), accuracy: s.mean, reference });
    }
    print_table(
        &format!("Design-choice ablation [{dataset}, 60% label-flip, ε=1; RA={reference:.3}]"),
        &["variant", "accuracy", "gap vs RA"],
        &rows,
    );
    println!(
        "\nExpected shape (§4.5/§4.7): the full protocol tracks RA; disabling the\n\
         first stage admits unbounded payloads; FLTrust's cosine weighting loses\n\
         accuracy under DP noise; the remaining flips cost little at 60% byz but\n\
         remove the guarantees the paper proves."
    );
    save_json("ablation_design_choices", &records);
}
