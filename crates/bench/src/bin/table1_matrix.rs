//! Table 1: the privacy / >50 %-resilience matrix, verified *empirically*.
//!
//! For each method we record (a) whether it provides a DP guarantee
//! (structural: noise calibrated by the accountant, or randomized-response
//! sign flips) and (b) whether it keeps useful accuracy when 60 % of
//! workers mount a label-flip attack.
//!
//! Thin wrapper over the registry: every row — the four non-private robust
//! rules, \[30\]-style clipping DP-SGD + Krum, \[77\]-style sign-DP, the
//! two-stage protocol and the Reference-Accuracy ceiling — is an `include`
//! row of the `paper/table1_matrix` scenario, which exists exactly once in
//! `dpbfl_harness::registry` (`dpbfl-exp run paper/table1_matrix` runs the
//! same grid; `dpbfl-exp show` exports it for editing). The scenario pins
//! the reduced scale the old hand-coded binary defaulted to; `DPBFL_FULL`
//! is not honored here — for other scales or seed sets, export the
//! scenario, edit it, and run it with `dpbfl-exp`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table1_matrix
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    private: bool,
    attacked_accuracy: f64,
    reference_accuracy: f64,
    resilient_beyond_majority: bool,
}

/// Display name and privacy verdict per registry row label.
fn method_for(label: &str) -> (&'static str, bool) {
    match label {
        "krum" => ("Krum", false),
        "coord-median" => ("Coordinate-wise Median", false),
        "trimmed-mean" => ("Trimmed Mean", false),
        "rfa" => ("RFA (geometric median)", false),
        "dp-sgd+krum" => ("Rachid et al. [30] (DP-SGD + Krum)", true),
        "sign-dp" => ("Heng et al. [77] (sign-DP)", true),
        "two-stage" => ("Ours (two-stage)", true),
        other => panic!("unexpected table-1 row label `{other}`"),
    }
}

fn main() {
    let spec = registry::get("paper/table1_matrix").expect("built-in scenario");
    let results = run_scenario_in_memory(&spec);
    let accuracy_of = |label: &str| -> f64 {
        results
            .iter()
            .find(|(cell, _)| cell.axis("row") == Some(label))
            .unwrap_or_else(|| panic!("row `{label}` missing from the grid"))
            .1
            .final_accuracy
    };

    // Reference: DP training with no Byzantine workers. "Resilient" =
    // retains at least 80 % of it under 60 % Byzantine label-flip.
    let reference = accuracy_of("reference");
    let resilient = |acc: f64| acc >= 0.8 * reference;

    let records: Vec<Record> = results
        .iter()
        .filter_map(|(cell, result)| {
            let label = cell.axis("row").expect("table-1 cells are include rows");
            if label == "reference" {
                return None;
            }
            let (method, private) = method_for(label);
            Some(Record {
                method: method.to_string(),
                private,
                attacked_accuracy: result.final_accuracy,
                reference_accuracy: reference,
                resilient_beyond_majority: resilient(result.final_accuracy),
            })
        })
        .collect();

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                if r.private { "✓".into() } else { "✗".into() },
                format!("{:.3}", r.attacked_accuracy),
                if r.resilient_beyond_majority { "✓".into() } else { "✗".into() },
            ]
        })
        .collect();
    print_table(
        &format!("Table 1 [mnist]: privacy and >50%-resilience (measured @60% label-flip, ref={reference:.3})"),
        &["method", "privacy", "acc @60% byz", ">50%-resilience"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 1): every prior row has at least one ✗; only the\n\
         two-stage protocol earns ✓/✓."
    );
    save_json("table1_matrix", &records);
}
