//! Table 1: the privacy / >50 %-resilience matrix, verified *empirically*.
//!
//! For each method we record (a) whether it provides a DP guarantee
//! (structural: noise calibrated by the accountant) and (b) whether it keeps
//! useful accuracy when 60 % of workers mount a label-flip attack.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table1_matrix [--dataset mnist]
//! ```

use dpbfl::baseline::{guerraoui_style, run_sign_dp, SignDpConfig};
use dpbfl::prelude::*;
use dpbfl_bench::{print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    private: bool,
    attacked_accuracy: f64,
    reference_accuracy: f64,
    resilient_beyond_majority: bool,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let dataset = args.value("dataset").unwrap_or("mnist");

    let base = |byz_mult: f64| {
        let mut cfg = scale.config(dataset);
        cfg.epsilon = Some(1.0);
        cfg.n_byzantine = (cfg.n_honest as f64 * byz_mult).round() as usize;
        cfg.attack = if cfg.n_byzantine > 0 { AttackSpec::LabelFlip } else { AttackSpec::None };
        cfg
    };

    // Reference: DP training with no Byzantine workers.
    let reference = run_seeds(&base(0.0), &scale.seeds).mean;
    // "Resilient" = retains at least 80% of the reference under 60% byz.
    let resilient = |acc: f64| acc >= 0.8 * reference;

    let mut records: Vec<Record> = Vec::new();
    let mut push = |method: &str, private: bool, acc: f64| {
        records.push(Record {
            method: method.to_string(),
            private,
            attacked_accuracy: acc,
            reference_accuracy: reference,
            resilient_beyond_majority: resilient(acc),
        });
    };

    // Non-private robust rules (paper rows: Krum, CM, TM, RFA) on non-DP
    // uploads.
    for (name, agg) in [
        ("Krum", AggregatorKind::Krum { f: 0 }),
        ("Coordinate-wise Median", AggregatorKind::CoordinateMedian),
        ("Trimmed Mean", AggregatorKind::TrimmedMean { trim: 0 }),
        ("RFA (geometric median)", AggregatorKind::GeometricMedian),
    ] {
        let mut cfg = base(1.5); // 60 % Byzantine
        let agg = match agg {
            AggregatorKind::Krum { .. } => AggregatorKind::Krum { f: cfg.n_byzantine },
            AggregatorKind::TrimmedMean { .. } => {
                AggregatorKind::TrimmedMean { trim: (cfg.n_total() / 2).saturating_sub(1) }
            }
            other => other,
        };
        cfg.protocol = WorkerProtocol::Plain;
        cfg.epsilon = None;
        cfg.dp.noise_multiplier = 0.0;
        cfg.defense = DefenseKind::Robust { rule: agg };
        let s = run_seeds(&cfg, &scale.seeds);
        push(name, false, s.mean);
    }

    // [30]-style: clipping DP-SGD + Krum.
    {
        let cfg = base(1.5);
        let n_byz = cfg.n_byzantine;
        let cfg = guerraoui_style(cfg, 1.0, AggregatorKind::Krum { f: n_byz });
        let s = run_seeds(&cfg, &scale.seeds);
        push("Rachid et al. [30] (DP-SGD + Krum)", true, s.mean);
    }

    // [77]-style sign-compression DP with a Byzantine majority.
    {
        let base_cfg = scale.config(dataset);
        let cfg = SignDpConfig {
            dataset: base_cfg.dataset.clone(),
            model: ModelKind::SmallMlp { hidden: 16 },
            per_worker: base_cfg.per_worker,
            test_count: base_cfg.test_count,
            n_honest: base_cfg.n_honest,
            n_byzantine: (base_cfg.n_honest as f64 * 1.5).round() as usize,
            epochs: base_cfg.epochs,
            lr: 0.002,
            batch_size: 16,
            flip_prob: SignDpConfig::flip_prob_for_epsilon(1.0),
            seed: 1,
        };
        let r = run_sign_dp(&cfg);
        push("Heng et al. [77] (sign-DP)", true, r.final_accuracy);
    }

    // Ours.
    {
        let mut cfg = base(1.5);
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
        let s = run_seeds(&cfg, &scale.seeds);
        push("Ours (two-stage)", true, s.mean);
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                if r.private { "✓".into() } else { "✗".into() },
                format!("{:.3}", r.attacked_accuracy),
                if r.resilient_beyond_majority { "✓".into() } else { "✗".into() },
            ]
        })
        .collect();
    print_table(
        &format!("Table 1 [{dataset}]: privacy and >50%-resilience (measured @60% label-flip, ref={reference:.3})"),
        &["method", "privacy", "acc @60% byz", ">50%-resilience"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 1): every prior row has at least one ✗; only the\n\
         two-stage protocol earns ✓/✓."
    );
    save_json("table1_matrix", &records);
}
