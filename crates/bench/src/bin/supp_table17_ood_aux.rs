//! Supp. Table 17: what happens when the server's auxiliary data comes from
//! a *different data space* (KMNIST in the paper, our independent-seed
//! `kmnist_like` family): the second-stage gradient misdirects and training
//! yields no useful utility — motivating the same-data-space assumption.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin supp_table17_ood_aux [--datasets ...]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    attack: String,
    byz_pct: usize,
    accuracy_ood_aux: f64,
    accuracy_good_aux: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let datasets = args.list("datasets", "mnist,fashion");
    let attacks: [(&str, AttackSpec); 2] =
        [("gaussian", AttackSpec::Gaussian), ("label-flip", AttackSpec::LabelFlip)];
    let byz_pcts: [usize; 2] = [20, 40];

    let mut records = Vec::new();
    for (aname, attack) in &attacks {
        let mut rows = Vec::new();
        for &byz_pct in &byz_pcts {
            let mut row = vec![format!("{byz_pct}%")];
            for dataset in &datasets {
                let mk = |ood: bool| {
                    let mut cfg = scale.config(dataset);
                    cfg.epsilon = Some(2.0);
                    cfg.n_byzantine = (cfg.n_honest as f64 * byz_pct as f64
                        / (100.0 - byz_pct as f64))
                        .round() as usize;
                    cfg.attack = attack.clone();
                    cfg.defense = DefenseKind::TwoStage;
                    cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
                    cfg.ood_auxiliary = ood;
                    cfg
                };
                let ood = run_seeds(&mk(true), &scale.seeds);
                let good = run_seeds(&mk(false), &scale.seeds);
                row.push(format!("{} (vs {})", fmt_acc(&ood), fmt_acc(&good)));
                records.push(Record {
                    dataset: dataset.to_string(),
                    attack: aname.to_string(),
                    byz_pct,
                    accuracy_ood_aux: ood.mean,
                    accuracy_good_aux: good.mean,
                });
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["byz".into()];
        headers.extend(datasets.iter().map(|d| format!("{d}: OOD aux (vs in-dist)")));
        let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        print_table(
            &format!("Supp. Table 17 [{aname} attack, ε=2]: KMNIST-like auxiliary data"),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\nPaper shape (supp. Table 17): with out-of-distribution auxiliary data the\n\
         defense collapses (≈ chance under Gaussian, ≤ chance under label-flip),\n\
         while in-distribution auxiliary data preserves full utility."
    );
    save_json("supp_table17_ood_aux", &records);
}
