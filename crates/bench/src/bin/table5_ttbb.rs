//! Table 5 (and supp. Figures 33–38): the adaptive attack — 60 % Byzantine
//! workers copy honest uploads until `TTBB·T` iterations, then turn
//! malicious. Resilience must be independent of when they turn.
//!
//! Thin wrapper over the registry's `paper/table5_ttbb` scenario: the TTBB
//! grid exists exactly once, in `dpbfl_harness::registry`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table5_ttbb
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    attack: String,
    accuracy: f64,
}

fn main() {
    let spec = registry::get("paper/table5_ttbb").expect("built-in scenario");
    let results = run_scenario_in_memory(&spec);

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (cell, result) in &results {
        let attack = cell.axis("attack").expect("attack axis is swept").to_string();
        rows.push(vec![attack.clone(), format!("{:.3}", result.final_accuracy)]);
        records.push(Record { attack, accuracy: result.final_accuracy });
    }
    print_table(&spec.title, &["attack (TTBB sweep)", "accuracy"], &rows);
    println!(
        "\nPaper shape (Table 5): accuracy is flat in TTBB — turning Byzantine at\n\
         any time has negligible impact."
    );
    save_json("table5_ttbb", &records);
}
