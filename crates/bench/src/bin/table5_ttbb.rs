//! Table 5 (and supp. Figures 33–38): the adaptive attack — 60 % Byzantine
//! workers copy honest uploads until `TTBB·T` iterations, then turn
//! malicious. Resilience must be independent of when they turn.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table5_ttbb
//!     [--attack label-flip|gaussian|opt-lmp] [--datasets ...] [--non-iid]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    attack: String,
    ttbb: f64,
    epsilon: f64,
    accuracy: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack_name = args.value("attack").unwrap_or("label-flip").to_string();
    let inner = match attack_name.as_str() {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    };
    let datasets =
        args.list("datasets", if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist" });
    let iid = !args.flag("non-iid");
    let ttbbs: Vec<f64> =
        if scale.full { vec![0.0, 0.2, 0.4, 0.6, 0.8] } else { vec![0.0, 0.4, 0.8] };
    let epsilons: Vec<f64> = if scale.full { vec![2.0, 0.125] } else { vec![2.0] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        for &ttbb in &ttbbs {
            let mut row = vec![format!("{ttbb}")];
            for &eps in &epsilons {
                let mut cfg = scale.config(dataset);
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                cfg.n_byzantine = (cfg.n_honest as f64 * 1.5).round() as usize; // 60 %
                cfg.attack = if ttbb == 0.0 {
                    inner.clone()
                } else {
                    AttackSpec::Adaptive { ttbb, inner: Box::new(inner.clone()) }
                };
                cfg.defense = DefenseKind::TwoStage;
                cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
                let s = run_seeds(&cfg, &scale.seeds);
                row.push(fmt_acc(&s));
                records.push(Record {
                    dataset: dataset.to_string(),
                    attack: attack_name.clone(),
                    ttbb,
                    epsilon: eps,
                    accuracy: s.mean,
                });
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["TTBB".into()];
        headers.extend(epsilons.iter().map(|e| format!("ε={e}")));
        let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        print_table(
            &format!("Table 5 [{dataset}, adaptive {attack_name}, 60% byz]"),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\nPaper shape (Table 5): accuracy is flat in TTBB — turning Byzantine at\n\
         any time has negligible impact (except mild wobble at ε = 0.125)."
    );
    save_json(&format!("table5_ttbb_{attack_name}"), &records);
}
