//! Figure 1 (and supp. Figures 18/21/24/27/30): Byzantine-resilient test
//! accuracy across privacy levels ε ∈ {⅛, ¼, ½, 1, 2} under 20/40/60 %
//! Byzantine workers, compared against the Reference Accuracy.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin fig1_label_flip
//!     [--attack label-flip|gaussian|opt-lmp]   # supp. figure variants
//!     [--datasets mnist,fashion,usps,colorectal]
//!     [--non-iid]                              # supp. non-i.i.d. variants
//!     [--byz 20,40,60]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale, EPSILONS};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    attack: String,
    byz_pct: usize,
    epsilon: f64,
    ours_mean: f64,
    reference_mean: f64,
    sigma: f64,
}

fn parse_attack(name: &str) -> AttackSpec {
    match name {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    }
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack_name = args.value("attack").unwrap_or("label-flip").to_string();
    let attack = parse_attack(&attack_name);
    let datasets = args.list(
        "datasets",
        if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist,fashion" },
    );
    let byz_list: Vec<usize> = args
        .list("byz", if scale.full { "20,40,60" } else { "20,60" })
        .iter()
        .map(|s| s.parse().expect("--byz takes integers"))
        .collect();
    let iid = !args.flag("non-iid");
    let epsilons: Vec<f64> = if scale.full { EPSILONS.to_vec() } else { vec![0.125, 0.5, 2.0] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        for &byz_pct in &byz_list {
            for &eps in &epsilons {
                let mut cfg = scale.config(dataset);
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                // byz_pct is a percentage of the *total* worker count.
                cfg.n_byzantine = (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64))
                    .round() as usize;
                cfg.attack = attack.clone();
                cfg.defense = DefenseKind::TwoStage;
                cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
                let ours = run_seeds(&cfg, &scale.seeds);

                // Reference Accuracy: DP only, no Byzantine workers, no
                // defense.
                let mut ra_cfg = scale.config(dataset);
                ra_cfg.iid = iid;
                ra_cfg.epsilon = Some(eps);
                let ra = run_seeds(&ra_cfg, &scale.seeds);

                rows.push(vec![
                    format!("{byz_pct}%"),
                    format!("{eps}"),
                    fmt_acc(&ours),
                    fmt_acc(&ra),
                    format!("{:+.3}", ours.mean - ra.mean),
                ]);
                records.push(Record {
                    dataset: dataset.to_string(),
                    attack: attack_name.clone(),
                    byz_pct,
                    epsilon: eps,
                    ours_mean: ours.mean,
                    reference_mean: ra.mean,
                    sigma: ours.sigma,
                });
            }
        }
        print_table(
            &format!(
                "Figure 1 [{dataset}, {attack_name}, {}]: ours vs Reference Accuracy",
                if iid { "iid" } else { "non-iid" }
            ),
            &["byz", "ε", "ours", "Reference Acc.", "gap"],
            &rows,
        );
    }
    println!(
        "\nPaper shape (Fig. 1): 'ours' tracks the Reference Accuracy at every ε and\n\
         Byzantine level, with the only visible gap at the extreme ε = 0.125."
    );
    save_json(&format!("fig1_{attack_name}_{}", if iid { "iid" } else { "noniid" }), &records);
}
