//! Figure 2 (and supp. Figures 6–17): resilience when 90 % — optionally
//! 95 %/99 % — of all workers are Byzantine.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin fig2_majority_byz
//!     [--attack label-flip|gaussian|opt-lmp] [--datasets ...]
//!     [--byz 90] [--non-iid]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale, EPSILONS};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    byz_pct: usize,
    epsilon: f64,
    ours_mean: f64,
    reference_mean: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let attack = match args.value("attack").unwrap_or("label-flip") {
        "label-flip" => AttackSpec::LabelFlip,
        "gaussian" => AttackSpec::Gaussian,
        "opt-lmp" => AttackSpec::OptLmp,
        other => panic!("unknown attack {other:?}"),
    };
    let datasets =
        args.list("datasets", if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist" });
    let byz_pct: usize = args.value("byz").unwrap_or("90").parse().expect("--byz integer");
    let iid = !args.flag("non-iid");
    let epsilons: Vec<f64> = if scale.full { EPSILONS.to_vec() } else { vec![0.125, 0.5, 2.0] };

    let mut records = Vec::new();
    for dataset in &datasets {
        let mut rows = Vec::new();
        for &eps in &epsilons {
            let mut cfg = scale.config(dataset);
            // Keep the extreme-majority grids tractable: the honest count
            // stays fixed, the Byzantine count grows to reach byz_pct.
            if !scale.full {
                cfg.n_honest = (cfg.n_honest / 2).max(4);
                // The faithful 1/n update (Alg. 1 line 14) shrinks the
                // effective step by γ; at 90% Byzantine that is 10×, which
                // the paper absorbs with its large T. Compensate the
                // reduced-scale run with extra epochs.
                cfg.epochs *= 2.0;
            }
            cfg.iid = iid;
            cfg.epsilon = Some(eps);
            cfg.n_byzantine =
                (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64)).round() as usize;
            cfg.attack = attack.clone();
            cfg.defense = DefenseKind::TwoStage;
            cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
            let ours = run_seeds(&cfg, &scale.seeds);

            let mut ra_cfg = scale.config(dataset);
            ra_cfg.iid = iid;
            ra_cfg.epsilon = Some(eps);
            let ra = run_seeds(&ra_cfg, &scale.seeds);

            rows.push(vec![
                format!("{eps}"),
                fmt_acc(&ours),
                fmt_acc(&ra),
                format!("{:+.3}", ours.mean - ra.mean),
            ]);
            records.push(Record {
                dataset: dataset.to_string(),
                byz_pct,
                epsilon: eps,
                ours_mean: ours.mean,
                reference_mean: ra.mean,
            });
        }
        print_table(
            &format!("Figure 2 [{dataset}, {}% {} attackers]", byz_pct, attack.name()),
            &["ε", "ours", "Reference Acc.", "gap"],
            &rows,
        );
    }
    println!(
        "\nPaper shape (Fig. 2): even at 90% Byzantine the protocol tracks the\n\
         Reference Accuracy for ε ≥ 0.5; drops appear only at ε ∈ {{0.125, 0.25}}."
    );
    save_json(&format!("fig2_byz{byz_pct}"), &records);
}
