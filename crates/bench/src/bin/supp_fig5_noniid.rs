//! Supp. Figure 5: visualization of the non-i.i.d. partition produced by
//! Algorithm 4 — per-worker class-ratio bars (rendered as an ASCII heat map).
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin supp_fig5_noniid [--workers 20]
//! ```

use dpbfl_bench::{save_json, Args};
use dpbfl_data::{label_distribution, non_iid_partition, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n_workers: usize = args.value("workers").unwrap_or("20").parse().expect("--workers int");
    let spec = SyntheticSpec::mnist_like();
    let data = spec.generate(10_000, 1);
    let mut rng = StdRng::seed_from_u64(1);
    let parts = non_iid_partition(&mut rng, &data.labels, data.num_classes, n_workers);
    let dist = label_distribution(&data.labels, &parts, data.num_classes);

    println!("Supp. Figure 5: non-i.i.d. class ratios per worker (Algorithm 4)");
    println!(
        "(each cell: ratio of that class in the worker's local data; ▓ ≥ .2, ▒ ≥ .1, ░ ≥ .05)"
    );
    print!("{:>9}", "worker");
    for c in 0..data.num_classes {
        print!("{c:>6}");
    }
    println!();
    let mut max_dev = 0.0f64;
    for (w, row) in dist.iter().enumerate() {
        print!("{w:>9}");
        for &r in row {
            let cell = if r >= 0.2 {
                "▓"
            } else if r >= 0.1 {
                "▒"
            } else if r >= 0.05 {
                "░"
            } else {
                "·"
            };
            print!("{:>5}{cell}", format!("{:.2}", r).trim_start_matches('0'));
            max_dev = max_dev.max((r - 1.0 / data.num_classes as f64).abs());
        }
        println!();
    }
    println!(
        "\nUniform (i.i.d.) ratio would be {:.2} everywhere; max deviation here = {:.2}.",
        1.0 / data.num_classes as f64,
        max_dev
    );
    println!(
        "Paper shape (supp. Fig. 5): ratios vary wildly across workers — e.g. a class\n\
         at ~0.2–0.3 for one worker and ~0 for another."
    );
    save_json("supp_fig5_noniid", &dist);
}
