//! Supp. Tables 15/16: the "side-effect" of DP itself — accuracy of plain
//! federated training vs DP training across ε, in both i.i.d. and
//! non-i.i.d. settings (no Byzantine workers, no defense).
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin supp_table15_dp_cost [--datasets ...]
//! ```

use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale, EPSILONS};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: String,
    epsilon: Option<f64>,
    iid: bool,
    accuracy: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let datasets = args.list(
        "datasets",
        if scale.full { "mnist,fashion,usps,colorectal" } else { "mnist,fashion" },
    );
    let epsilons: Vec<f64> =
        if scale.full { EPSILONS.iter().rev().cloned().collect() } else { vec![2.0, 0.5, 0.125] };

    let mut records = Vec::new();
    for iid in [true, false] {
        let mut rows = Vec::new();
        // Non-DP row.
        let mut row = vec!["Non-DP".to_string()];
        for dataset in &datasets {
            let mut cfg = scale.config(dataset);
            cfg.iid = iid;
            cfg.protocol = WorkerProtocol::Plain;
            let s = run_seeds(&cfg, &scale.seeds);
            row.push(fmt_acc(&s));
            records.push(Record {
                dataset: dataset.to_string(),
                epsilon: None,
                iid,
                accuracy: s.mean,
            });
        }
        rows.push(row);
        // DP rows.
        for &eps in &epsilons {
            let mut row = vec![format!("ε={eps}")];
            for dataset in &datasets {
                let mut cfg = scale.config(dataset);
                cfg.iid = iid;
                cfg.epsilon = Some(eps);
                let s = run_seeds(&cfg, &scale.seeds);
                row.push(fmt_acc(&s));
                records.push(Record {
                    dataset: dataset.to_string(),
                    epsilon: Some(eps),
                    iid,
                    accuracy: s.mean,
                });
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["privacy".into()];
        headers.extend(datasets.iter().map(|d| d.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
        print_table(
            &format!(
                "Supp. Table {} ({}): DP's own utility cost",
                if iid { "15" } else { "16" },
                if iid { "iid" } else { "non-iid" }
            ),
            &headers_ref,
            &rows,
        );
    }
    println!(
        "\nPaper shape (supp. Tables 15/16): monotone utility loss as ε shrinks;\n\
         i.i.d. and non-i.i.d. columns are nearly identical."
    );
    save_json("supp_table15_dp_cost", &records);
}
