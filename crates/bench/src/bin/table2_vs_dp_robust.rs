//! Table 2: comparison with [30] (DP-SGD + off-the-shelf robust aggregation)
//! on Fashion under the "A little" and "Inner" (inner-product manipulation)
//! attacks.
//!
//! Paper's numbers: [30] reaches .61/.75 at 40 % byz (ε = 3.46) and .78/.79
//! at 20 % (ε = 7.58); ours reaches ~.79–.80 at 40–60 % byz with ε = 2.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table2_vs_dp_robust [--dataset fashion]
//! ```

use dpbfl::baseline::guerraoui_style;
use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    byz_pct: usize,
    epsilon: f64,
    attack: String,
    accuracy: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let dataset = args.value("dataset").unwrap_or("fashion");

    let attacks: [(&str, AttackSpec); 2] =
        [("a-little", AttackSpec::ALittle), ("inner", AttackSpec::InnerProduct { scale: 5.0 })];

    let mut records = Vec::new();
    let mut rows = Vec::new();

    // [30]-style baseline at 20% and 40% byz (its viable range), ε ≈ 3.46.
    for byz_pct in [20usize, 40] {
        let mut row = vec![format!("[30] DP+Krum, {byz_pct}% byz, ε=3.46")];
        for (aname, attack) in &attacks {
            let mut cfg = scale.config(dataset);
            cfg.epsilon = Some(3.46);
            cfg.n_byzantine =
                (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64)).round() as usize;
            cfg.attack = attack.clone();
            let n_byz = cfg.n_byzantine;
            let cfg = guerraoui_style(cfg, 1.0, AggregatorKind::Krum { f: n_byz });
            let s = run_seeds(&cfg, &scale.seeds);
            row.push(fmt_acc(&s));
            records.push(Record {
                method: "dp-krum".into(),
                byz_pct,
                epsilon: 3.46,
                attack: aname.to_string(),
                accuracy: s.mean,
            });
        }
        rows.push(row);
    }

    // Ours at 40% and 60% byz with the *stronger* guarantee ε = 2.
    for byz_pct in [40usize, 60] {
        let mut row = vec![format!("Ours, {byz_pct}% byz, ε=2.00")];
        for (aname, attack) in &attacks {
            let mut cfg = scale.config(dataset);
            cfg.epsilon = Some(2.0);
            cfg.n_byzantine =
                (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64)).round() as usize;
            cfg.attack = attack.clone();
            cfg.defense = DefenseKind::TwoStage;
            cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
            let s = run_seeds(&cfg, &scale.seeds);
            row.push(fmt_acc(&s));
            records.push(Record {
                method: "ours".into(),
                byz_pct,
                epsilon: 2.0,
                attack: aname.to_string(),
                accuracy: s.mean,
            });
        }
        rows.push(row);
    }

    print_table(
        &format!("Table 2 [{dataset}]: vs DP-SGD + robust aggregation"),
        &["method / setting", "\"A little\" attack", "\"Inner\" attack"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 2): ours at 60% Byzantine with ε=2 beats [30] at\n\
         40% Byzantine with the weaker ε=3.46 guarantee, under both attacks."
    );
    save_json("table2_vs_dp_robust", &records);
}
