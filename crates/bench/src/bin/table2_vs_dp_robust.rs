//! Table 2: comparison with \[30\] (DP-SGD + off-the-shelf robust aggregation)
//! on Fashion under the "A little" and "Inner" (inner-product manipulation)
//! attacks.
//!
//! Thin wrapper over the registry: the baseline grid is
//! `paper/table2_dp_krum` (clipping DP-SGD + Krum at 20 %/40 % Byzantine,
//! ε ≈ 3.46), ours is `paper/table2_ours` (two-stage at 40 %/60 % with the
//! stronger ε = 2) — both exist exactly once, in `dpbfl_harness::registry`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table2_vs_dp_robust
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory, Cell, ScenarioSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    n_byzantine: usize,
    epsilon: f64,
    attack: String,
    accuracy: f64,
}

/// One registry grid → table rows: one row per swept `n_byzantine`, one
/// column per swept attack (the grid expands `n_byzantine` before attacks is
/// irrelevant — cells are matched by axis labels).
fn rows_for(spec: &ScenarioSpec, method: &str, records: &mut Vec<Record>) -> Vec<Vec<String>> {
    let results = run_scenario_in_memory(spec);
    let axis = |cell: &Cell, name: &str| -> String {
        cell.axis(name).unwrap_or_else(|| panic!("{name} axis is swept")).to_string()
    };
    let byz_labels = dpbfl_bench::distinct_axis_labels(&results, "n_byzantine");
    byz_labels
        .iter()
        .map(|byz| {
            let n_byz: usize = byz.parse().expect("n_byzantine labels are counts");
            let n_total = results[0].0.config.n_honest + n_byz;
            let epsilon = results[0].0.config.epsilon.expect("Table 2 runs are private");
            let mut row = vec![format!(
                "{method}, {:.0}% byz, ε={epsilon:.2}",
                100.0 * n_byz as f64 / n_total as f64
            )];
            for (cell, result) in &results {
                if axis(cell, "n_byzantine") != *byz {
                    continue;
                }
                row.push(format!("{:.3}", result.final_accuracy));
                records.push(Record {
                    method: method.into(),
                    n_byzantine: n_byz,
                    epsilon,
                    attack: axis(cell, "attack"),
                    accuracy: result.final_accuracy,
                });
            }
            row
        })
        .collect()
}

fn main() {
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let baseline = registry::get("paper/table2_dp_krum").expect("built-in scenario");
    rows.extend(rows_for(&baseline, "[30] DP+Krum", &mut records));
    let ours = registry::get("paper/table2_ours").expect("built-in scenario");
    rows.extend(rows_for(&ours, "Ours", &mut records));

    print_table(
        "Table 2 [fashion]: vs DP-SGD + robust aggregation",
        &["method / setting", "\"A little\" attack", "\"Inner\" attack"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 2): ours at 60% Byzantine with ε=2 beats [30] at\n\
         40% Byzantine with the weaker ε=3.46 guarantee, under both attacks."
    );
    save_json("table2_vs_dp_robust", &records);
}
