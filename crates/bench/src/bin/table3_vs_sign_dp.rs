//! Table 3: comparison with \[77\] (sign-compression DP aggregation) on MNIST
//! under the Gaussian attack.
//!
//! Paper's numbers: \[77\] reaches .20/.43 with only 10 % Byzantine workers at
//! ε ∈ {0.21, 0.40}; ours reaches ~.86 with 40–60 % Byzantine at ε = 0.125.
//!
//! Thin wrapper over the registry: both sign-DP settings and both of ours
//! are `include` rows of the `paper/table3_sign_dp` scenario, which exists
//! exactly once in `dpbfl_harness::registry` (`dpbfl-exp run
//! paper/table3_sign_dp` runs the same grid). The scenario pins the
//! reduced scale the old hand-coded binary defaulted to; `DPBFL_FULL` is
//! not honored here — for other scales or seed sets, export the scenario,
//! edit it, and run it with `dpbfl-exp`.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table3_vs_sign_dp
//! ```

use dpbfl_bench::{print_table, save_json};
use dpbfl_harness::{registry, run_scenario_in_memory};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    byz_pct: usize,
    epsilon: f64,
    accuracy: f64,
}

/// Per row label: display string, method tag, Byzantine percentage and the
/// privacy budget the row advertises (\[77\]'s published total ε for the
/// sign rows, our accountant target for ours).
fn row_for(label: &str) -> (String, &'static str, usize, f64) {
    match label {
        "sign-dp(eps=0.21)" => ("[77] sign-DP, 10% byz, ε=0.21".into(), "sign-dp", 10, 0.21),
        "sign-dp(eps=0.4)" => ("[77] sign-DP, 10% byz, ε=0.4".into(), "sign-dp", 10, 0.40),
        "ours(byz=40%)" => ("Ours, 40% byz, ε=0.125".into(), "ours", 40, 0.125),
        "ours(byz=60%)" => ("Ours, 60% byz, ε=0.125".into(), "ours", 60, 0.125),
        other => panic!("unexpected table-3 row label `{other}`"),
    }
}

fn main() {
    let spec = registry::get("paper/table3_sign_dp").expect("built-in scenario");
    let results = run_scenario_in_memory(&spec);
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (cell, result) in &results {
        let label = cell.axis("row").expect("table-3 cells are include rows");
        let (display, method, byz_pct, epsilon) = row_for(label);
        rows.push(vec![display, format!("{:.3}", result.final_accuracy)]);
        records.push(Record {
            method: method.into(),
            byz_pct,
            epsilon,
            accuracy: result.final_accuracy,
        });
    }

    print_table(
        "Table 3 [mnist]: vs sign-compression DP, Gaussian attack",
        &["method / setting", "accuracy"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 3): ours at 6× the Byzantine fraction and a stronger\n\
         privacy level still clearly beats the sign-DP baseline."
    );
    save_json("table3_vs_sign_dp", &records);
}
