//! Table 3: comparison with [77] (sign-compression DP aggregation) on MNIST
//! under the Gaussian attack.
//!
//! Paper's numbers: [77] reaches .20/.43 with only 10 % Byzantine workers at
//! ε ∈ {0.21, 0.40}; ours reaches ~.86 with 40–60 % Byzantine at ε = 0.125.
//!
//! ```text
//! cargo run --release -p dpbfl-bench --bin table3_vs_sign_dp [--dataset mnist]
//! ```

use dpbfl::baseline::{run_sign_dp, SignDpConfig};
use dpbfl::prelude::*;
use dpbfl_bench::{fmt_acc, print_table, run_seeds, save_json, Args, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    method: String,
    byz_pct: usize,
    epsilon: f64,
    accuracy: f64,
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_env();
    let dataset = args.value("dataset").unwrap_or("mnist");
    let mut records = Vec::new();
    let mut rows = Vec::new();

    // [77]-style sign DP at 10% byz. The paper's ε is the TOTAL privacy
    // budget of the whole training run; under (naive, linear) composition
    // the per-round randomized-response budget is ε/T, which drives the
    // flip probability toward 1/2 — the structural reason [77]'s accuracy
    // collapses at these privacy levels.
    for eps_total in [0.21f64, 0.40] {
        let base_cfg = scale.config(dataset);
        let n_honest = base_cfg.n_honest;
        let rounds = (base_cfg.epochs * base_cfg.per_worker as f64 / 16.0).ceil();
        let eps0 = eps_total / rounds;
        let cfg = SignDpConfig {
            dataset: base_cfg.dataset.clone(),
            model: ModelKind::SmallMlp { hidden: 16 },
            per_worker: base_cfg.per_worker,
            test_count: base_cfg.test_count,
            n_honest,
            n_byzantine: (n_honest as f64 / 9.0).round().max(1.0) as usize, // 10 % of total
            epochs: base_cfg.epochs,
            lr: 0.002,
            batch_size: 16,
            flip_prob: SignDpConfig::flip_prob_for_epsilon(eps0),
            seed: 1,
        };
        let r = run_sign_dp(&cfg);
        rows.push(vec![
            format!("[77] sign-DP, 10% byz, ε={eps_total}"),
            format!("{:.3}", r.final_accuracy),
        ]);
        records.push(Record {
            method: "sign-dp".into(),
            byz_pct: 10,
            epsilon: eps_total,
            accuracy: r.final_accuracy,
        });
    }

    // Ours at 40% and 60% byz, ε = 0.125.
    for byz_pct in [40usize, 60] {
        let mut cfg = scale.config(dataset);
        cfg.epsilon = Some(0.125);
        cfg.n_byzantine =
            (cfg.n_honest as f64 * byz_pct as f64 / (100.0 - byz_pct as f64)).round() as usize;
        cfg.attack = AttackSpec::Gaussian;
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = cfg.n_honest as f64 / cfg.n_total() as f64;
        let s = run_seeds(&cfg, &scale.seeds);
        rows.push(vec![format!("Ours, {byz_pct}% byz, ε=0.125"), fmt_acc(&s)]);
        records.push(Record { method: "ours".into(), byz_pct, epsilon: 0.125, accuracy: s.mean });
    }

    print_table(
        &format!("Table 3 [{dataset}]: vs sign-compression DP, Gaussian attack"),
        &["method / setting", "accuracy"],
        &rows,
    );
    println!(
        "\nPaper shape (Table 3): ours at 6× the Byzantine fraction and a stronger\n\
         privacy level still clearly beats the sign-DP baseline."
    );
    save_json("table3_vs_sign_dp", &records);
}
