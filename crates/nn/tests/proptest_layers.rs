//! Property-based tests for the NN substrate.

use dpbfl_nn::activation::{Elu, Relu};
use dpbfl_nn::layer::Layer;
use dpbfl_nn::loss::CrossEntropyLoss;
use dpbfl_nn::norm::GroupNorm;
use dpbfl_nn::zoo;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elu_is_monotone_and_bounded_below(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let mut e = Elu::new(2);
        let y = e.forward(&[a, b]);
        prop_assert!(y.iter().all(|&v| v > -1.0 - 1e-6));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let y2 = e.forward(&[lo, hi]);
        prop_assert!(y2[0] <= y2[1] + 1e-6);
    }

    #[test]
    fn relu_output_is_nonnegative(v in prop::collection::vec(-10.0f32..10.0, 1..16)) {
        let mut r = Relu::new(v.len());
        prop_assert!(r.forward(&v).iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn groupnorm_output_is_standardized(
        v in prop::collection::vec(-100.0f32..100.0, 16..17)
    ) {
        // Skip near-constant inputs where variance ≈ 0.
        let mean0: f32 = v.iter().sum::<f32>() / 16.0;
        let var0: f32 = v.iter().map(|x| (x - mean0).powi(2)).sum::<f32>() / 16.0;
        prop_assume!(var0 > 1e-3);
        let mut gn = GroupNorm::new(1, 4, 2, 2);
        let y = gn.forward(&v);
        let mean: f32 = y.iter().sum::<f32>() / 16.0;
        let var: f32 = y.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 16.0;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        logits in prop::collection::vec(-20.0f32..20.0, 2..10)
    ) {
        let label = logits.len() - 1;
        let (loss, grad) = CrossEntropyLoss.loss_and_grad(&logits, label);
        prop_assert!(loss >= -1e-9);
        let sum: f32 = grad.iter().sum();
        prop_assert!(sum.abs() < 1e-5);
        prop_assert!(grad[label] <= 0.0); // correct class is pushed up
    }

    #[test]
    fn mlp_params_roundtrip(input in 1usize..32, hidden in 1usize..16, classes in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = zoo::mlp(&mut rng, input, hidden, classes);
        let expected = input * hidden + hidden + hidden * classes + classes;
        prop_assert_eq!(m.param_len(), expected);
        let p: Vec<f32> = (0..expected).map(|i| (i % 17) as f32 * 0.1 - 0.8).collect();
        m.set_params(&p);
        prop_assert_eq!(m.params(), p);
    }

    #[test]
    fn forward_is_deterministic_wrt_params(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = zoo::mlp(&mut rng, 8, 4, 3);
        let x = [0.1f32, -0.2, 0.3, 0.0, 0.5, -0.5, 0.9, -0.9];
        let y1 = m.forward(&x);
        let y2 = m.forward(&x);
        prop_assert_eq!(y1, y2);
    }
}
