//! Bit-exactness contract of the batched inference subsystem.
//!
//! The batched kernels promise that every logit, prediction, and accumulated
//! gradient scalar is **bit-identical** to the per-example path — that is what
//! lets `nn::accuracy`, the server's auxiliary gradient, and the FLTrust
//! trust gradient go batched without touching the simulation's determinism
//! contract. These tests pin that promise for every `zoo` architecture.

use dpbfl_nn::{zoo, Checkpoint, CrossEntropyLoss, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic pseudo-random batch: `batch` examples of length `len` in
/// roughly [-0.5, 0.5], salted so different tensors differ.
fn fill(batch: usize, len: usize, salt: u32) -> Vec<f32> {
    (0..batch * len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h % 1000) as f32 / 1000.0) - 0.5
        })
        .collect()
}

/// Every zoo model with its name (for failure messages).
fn zoo_models() -> Vec<(&'static str, Sequential)> {
    let mut rng = StdRng::seed_from_u64(42);
    vec![
        ("mlp_784", zoo::mlp_784(&mut rng)),
        ("mnist_cnn", zoo::mnist_cnn(&mut rng)),
        ("colorectal_cnn", zoo::colorectal_cnn(&mut rng)),
        ("small_mlp", zoo::mlp(&mut rng, 24, 8, 4)),
    ]
}

#[test]
fn forward_batch_logits_bit_identical_for_every_zoo_model() {
    // Batch of 5: exercises both the 4-wide unrolled GEMM lanes and the
    // remainder path.
    let batch = 5usize;
    for (name, mut model) in zoo_models() {
        let in_len = model.input_len();
        let k = model.output_len();
        let xs = fill(batch, in_len, 7);
        let batched = model.forward_batch(&xs, batch);
        assert_eq!(batched.len(), batch * k, "{name}: bad batched logit count");
        for bi in 0..batch {
            let single = model.forward(&xs[bi * in_len..(bi + 1) * in_len]);
            for (j, (&a, &b)) in batched[bi * k..(bi + 1) * k].iter().zip(&single).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: logit ({bi}, {j}) differs: batched {a} vs per-example {b}"
                );
            }
        }
    }
}

#[test]
fn predict_batch_matches_per_example_predict() {
    let batch = 6usize;
    for (name, mut model) in zoo_models() {
        let in_len = model.input_len();
        let xs = fill(batch, in_len, 11);
        let batched = model.predict_batch(&xs, batch);
        for bi in 0..batch {
            let single = model.predict(&xs[bi * in_len..(bi + 1) * in_len]);
            assert_eq!(batched[bi], single, "{name}: prediction {bi} differs");
        }
    }
}

#[test]
fn accuracy_is_bit_identical_to_per_example_evaluation() {
    // 131 examples: spans two full 64-wide eval batches plus a remainder.
    let count = 131usize;
    for (name, mut model) in zoo_models() {
        let in_len = model.input_len();
        let k = model.output_len();
        let features = fill(count, in_len, 13);
        let labels: Vec<usize> = (0..count).map(|i| (i * 7) % k).collect();
        let batched = dpbfl_nn::accuracy(&mut model, &features, &labels);
        let mut correct = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            if model.predict(&features[i * in_len..(i + 1) * in_len]) == label {
                correct += 1;
            }
        }
        let reference = correct as f64 / count as f64;
        assert_eq!(batched.to_bits(), reference.to_bits(), "{name}: accuracy differs");
    }
}

#[test]
fn batch_gradient_bit_identical_to_per_example_loop() {
    // The server-gradient path (two-stage Algorithm 3 line 4 and the FLTrust
    // trust gradient) must produce the same bits as the per-example loop it
    // replaced.
    let batch = 4usize;
    let loss_fn = CrossEntropyLoss;
    for (name, mut model) in zoo_models() {
        let in_len = model.input_len();
        let k = model.output_len();
        let xs = fill(batch, in_len, 17);
        let labels: Vec<usize> = (0..batch).map(|i| (i * 3) % k).collect();

        // Reference: the pre-batching implementation, verbatim.
        let mut reference = model.clone();
        reference.zero_grads();
        let mut ref_loss = 0.0f64;
        for bi in 0..batch {
            let logits = reference.forward(&xs[bi * in_len..(bi + 1) * in_len]);
            let (loss, grad_logits) = loss_fn.loss_and_grad(&logits, labels[bi]);
            ref_loss += loss;
            reference.backward(&grad_logits);
        }
        let mut ref_grad = vec![0.0f32; reference.param_len()];
        reference.write_grads_into(&mut ref_grad);
        let inv = 1.0 / batch as f32;
        for g in ref_grad.iter_mut() {
            *g *= inv;
        }
        ref_loss /= batch as f64;

        let mut grad = vec![0.0f32; model.param_len()];
        let loss = model.batch_gradient_packed(&loss_fn, &xs, &labels, &mut grad);
        assert_eq!(loss.to_bits(), ref_loss.to_bits(), "{name}: mean loss differs");
        for (i, (&a, &b)) in grad.iter().zip(&ref_grad).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: gradient scalar {i} differs");
        }
    }
}

#[test]
fn backward_batch_input_gradients_match_per_example() {
    let batch = 3usize;
    let loss_fn = CrossEntropyLoss;
    for (name, mut model) in zoo_models() {
        let in_len = model.input_len();
        let k = model.output_len();
        let xs = fill(batch, in_len, 23);
        let labels: Vec<usize> = (0..batch).map(|i| i % k).collect();

        model.zero_grads();
        let logits = model.forward_batch(&xs, batch);
        let mut grad_logits = vec![0.0f32; batch * k];
        for bi in 0..batch {
            let (_, g) = loss_fn.loss_and_grad(&logits[bi * k..(bi + 1) * k], labels[bi]);
            grad_logits[bi * k..(bi + 1) * k].copy_from_slice(&g);
        }
        let batched_gin = model.backward_batch(&grad_logits, batch);

        for bi in 0..batch {
            let mut single = model.clone();
            single.zero_grads();
            let l = single.forward(&xs[bi * in_len..(bi + 1) * in_len]);
            let (_, g) = loss_fn.loss_and_grad(&l, labels[bi]);
            let gin = single.backward(&g);
            for (j, (&a, &b)) in
                batched_gin[bi * in_len..(bi + 1) * in_len].iter().zip(&gin).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: input grad ({bi}, {j}) differs");
            }
        }
    }
}

#[test]
fn checkpoint_restore_preserves_batched_parity() {
    // A model restored from a checkpoint must drive the batched path to the
    // same bits as the original — deployments evaluate restored models.
    let batch = 4usize;
    let mut rng = StdRng::seed_from_u64(3);
    let mut original = zoo::mnist_cnn(&mut rng);
    let ckpt = Checkpoint::capture(&original, "mnist_cnn", 9);
    let mut restored = zoo::mnist_cnn(&mut rng); // different init
    ckpt.restore(&mut restored, "mnist_cnn").expect("restore");

    let xs = fill(batch, original.input_len(), 29);
    let k = original.output_len();
    let batched = restored.forward_batch(&xs, batch);
    for bi in 0..batch {
        let single = original.forward(&xs[bi * original.input_len()..][..original.input_len()]);
        for j in 0..k {
            assert_eq!(batched[bi * k + j].to_bits(), single[j].to_bits(), "({bi}, {j})");
        }
    }
}
