//! Model zoo: the paper's exact network architectures (supp. A.1).
//!
//! | Dataset            | Architecture                   | `d` (paper) |
//! |--------------------|--------------------------------|-------------|
//! | MNIST              | 3×(Conv5→ELU→GN) + pool + MLP  | 21 802      |
//! | Fashion / USPS     | 784→32→10 MLP                  | 25 450      |
//! | Colorectal         | residual CNN                   | 33 736*     |
//!
//! *Our Colorectal-like network keeps the residual structure but operates on
//! 32×32×3 synthetic inputs (the real dataset's 150×150 histology images are
//! unavailable offline), giving a comparable-but-smaller `d`; the MNIST and
//! MLP parameter counts match the paper exactly and are asserted in tests.

use crate::activation::Elu;
use crate::conv::Conv2d;
use crate::layer::AnyLayer;
use crate::linear::Linear;
use crate::norm::GroupNorm;
use crate::pool::AdaptiveAvgPool2d;
use crate::residual::Residual;
use crate::sequential::Sequential;
use dpbfl_tensor::conv::ConvGeometry;
use rand::Rng;

/// The paper's MNIST CNN (Table 7): three 5×5 conv blocks with ELU and
/// affine-free GroupNorm, adaptive 4×4 pooling, then a 256→32→10 head.
/// Exactly `d = 21 802` parameters.
pub fn mnist_cnn<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    let g1 =
        ConvGeometry { in_channels: 1, out_channels: 16, in_h: 28, in_w: 28, kernel: 5, stride: 1 };
    let g2 = ConvGeometry {
        in_channels: 16,
        out_channels: 16,
        in_h: 24,
        in_w: 24,
        kernel: 5,
        stride: 1,
    };
    let g3 = ConvGeometry {
        in_channels: 16,
        out_channels: 16,
        in_h: 20,
        in_w: 20,
        kernel: 5,
        stride: 1,
    };
    Sequential::new(vec![
        Conv2d::new(rng, g1).into(),
        Elu::new(16 * 24 * 24).into(),
        GroupNorm::new(4, 16, 24, 24).into(),
        Conv2d::new(rng, g2).into(),
        Elu::new(16 * 20 * 20).into(),
        GroupNorm::new(4, 16, 20, 20).into(),
        Conv2d::new(rng, g3).into(),
        Elu::new(16 * 16 * 16).into(),
        GroupNorm::new(4, 16, 16, 16).into(),
        AdaptiveAvgPool2d::new(16, 16, 16, 4, 4).into(),
        Linear::new(rng, 256, 32).into(),
        Elu::new(32).into(),
        Linear::new(rng, 32, 10).into(),
    ])
}

/// The paper's Fashion / USPS network (Table 8): `flatten → 784→32 → ELU →
/// 32→10`. Exactly `d = 25 450` parameters.
pub fn mlp_784<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    Sequential::new(vec![
        Linear::new(rng, 784, 32).into(),
        Elu::new(32).into(),
        Linear::new(rng, 32, 10).into(),
    ])
}

/// Generic two-layer MLP classifier (`in → hidden → classes` with ELU),
/// used for reduced-scale experiments and examples.
pub fn mlp<R: Rng + ?Sized>(
    rng: &mut R,
    input: usize,
    hidden: usize,
    classes: usize,
) -> Sequential {
    Sequential::new(vec![
        Linear::new(rng, input, hidden).into(),
        Elu::new(hidden).into(),
        Linear::new(rng, hidden, classes).into(),
    ])
}

/// Colorectal-like residual CNN over 32×32×3 inputs, 8 classes: two 5×5 conv
/// blocks, a residual block of 1×1 convolutions, pooling, and a 256→64→8 head.
pub fn colorectal_cnn<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    let g1 =
        ConvGeometry { in_channels: 3, out_channels: 16, in_h: 32, in_w: 32, kernel: 5, stride: 1 };
    let g2 = ConvGeometry {
        in_channels: 16,
        out_channels: 16,
        in_h: 28,
        in_w: 28,
        kernel: 5,
        stride: 1,
    };
    let gr = ConvGeometry {
        in_channels: 16,
        out_channels: 16,
        in_h: 24,
        in_w: 24,
        kernel: 1,
        stride: 1,
    };
    let res_body: Vec<AnyLayer> = vec![
        Conv2d::new(rng, gr).into(),
        Elu::new(16 * 24 * 24).into(),
        Conv2d::new(rng, gr).into(),
    ];
    Sequential::new(vec![
        Conv2d::new(rng, g1).into(),
        Elu::new(16 * 28 * 28).into(),
        GroupNorm::new(4, 16, 28, 28).into(),
        Conv2d::new(rng, g2).into(),
        Elu::new(16 * 24 * 24).into(),
        GroupNorm::new(4, 16, 24, 24).into(),
        Residual::new(res_body).into(),
        AdaptiveAvgPool2d::new(16, 24, 24, 4, 4).into(),
        Linear::new(rng, 256, 64).into(),
        Elu::new(64).into(),
        Linear::new(rng, 64, 8).into(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mnist_cnn_has_papers_parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = mnist_cnn(&mut rng);
        assert_eq!(m.param_len(), 21_802, "paper supp. A.1 reports d = 21 802 for MNIST");
        assert_eq!(m.input_len(), 28 * 28);
        assert_eq!(m.output_len(), 10);
    }

    #[test]
    fn mlp_784_has_papers_parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = mlp_784(&mut rng);
        assert_eq!(m.param_len(), 25_450, "paper supp. A.1 reports d = 25 450 for Fashion/USPS");
    }

    #[test]
    fn colorectal_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = colorectal_cnn(&mut rng);
        assert_eq!(m.input_len(), 3 * 32 * 32);
        assert_eq!(m.output_len(), 8);
        // 1216 + 6416 + 544 + 16448 + 520 = 25 144
        assert_eq!(m.param_len(), 25_144);
    }

    #[test]
    fn mnist_cnn_forward_backward_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mnist_cnn(&mut rng);
        let x = vec![0.5f32; 28 * 28];
        let logits = m.forward(&x);
        assert_eq!(logits.len(), 10);
        assert!(logits.iter().all(|v| v.is_finite()));
        let loss_fn = crate::loss::CrossEntropyLoss;
        let mut g = vec![0.0f32; m.param_len()];
        let loss = m.example_gradient(&loss_fn, &x, 3, &mut g);
        assert!(loss.is_finite() && loss > 0.0);
        let gnorm: f64 = g.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
        assert!(gnorm > 0.0 && gnorm.is_finite());
    }

    #[test]
    fn colorectal_cnn_gradient_flows_through_residual() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = colorectal_cnn(&mut rng);
        let x = vec![0.1f32; 3 * 32 * 32];
        let loss_fn = crate::loss::CrossEntropyLoss;
        let mut g = vec![0.0f32; m.param_len()];
        let loss = m.example_gradient(&loss_fn, &x, 0, &mut g);
        assert!(loss.is_finite());
        let nonzero = g.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero > m.param_len() / 2, "gradient is mostly zero: {nonzero} nonzero");
    }
}
