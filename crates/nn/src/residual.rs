//! Residual block `y = x + body(x)`.
//!
//! The paper's Colorectal network "has a residual connection" (supp. A.1); the
//! body here is an arbitrary stack of layers whose output length equals its
//! input length.

use crate::layer::{AnyLayer, Layer};

/// Residual wrapper around a sequence of inner layers.
#[derive(Debug, Clone)]
pub struct Residual {
    body: Vec<AnyLayer>,
    len: usize,
}

impl Residual {
    /// Builds `y = x + body(x)`. Panics unless the body maps length `len` to
    /// length `len`.
    pub fn new(body: Vec<AnyLayer>) -> Self {
        assert!(!body.is_empty(), "residual body must have at least one layer");
        let len = body.first().expect("non-empty").input_len();
        let out = body.last().expect("non-empty").output_len();
        assert_eq!(len, out, "residual body must preserve the vector length ({len} vs {out})");
        // Interior shape compatibility.
        for pair in body.windows(2) {
            assert_eq!(
                pair[0].output_len(),
                pair[1].input_len(),
                "residual body layers are shape-incompatible"
            );
        }
        Residual { body, len }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.len, "Residual: bad input length");
        let mut h = input.to_vec();
        for layer in &mut self.body {
            h = layer.forward(&h);
        }
        for (hv, &xv) in h.iter_mut().zip(input) {
            *hv += xv;
        }
        h
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.len, "Residual: bad grad length");
        let mut g = grad_output.to_vec();
        for layer in self.body.iter_mut().rev() {
            g = layer.backward(&g);
        }
        // Skip connection adds the output gradient directly.
        for (gv, &ov) in g.iter_mut().zip(grad_output) {
            *gv += ov;
        }
        g
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len, "Residual: bad batch input length");
        let mut h = input.to_vec();
        for layer in &mut self.body {
            h = layer.forward_batch(&h, batch);
        }
        for (hv, &xv) in h.iter_mut().zip(input) {
            *hv += xv;
        }
        h
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_output.len(), batch * self.len, "Residual: bad batch grad length");
        let mut g = grad_output.to_vec();
        for layer in self.body.iter_mut().rev() {
            g = layer.backward_batch(&g, batch);
        }
        for (gv, &ov) in g.iter_mut().zip(grad_output) {
            *gv += ov;
        }
        g
    }

    fn param_len(&self) -> usize {
        self.body.iter().map(|l| l.param_len()).sum()
    }

    fn input_len(&self) -> usize {
        self.len
    }

    fn output_len(&self) -> usize {
        self.len
    }

    fn write_params(&self, out: &mut [f32]) {
        let mut off = 0;
        for layer in &self.body {
            let n = layer.param_len();
            layer.write_params(&mut out[off..off + n]);
            off += n;
        }
    }

    fn read_params(&mut self, src: &[f32]) {
        let mut off = 0;
        for layer in &mut self.body {
            let n = layer.param_len();
            layer.read_params(&src[off..off + n]);
            off += n;
        }
    }

    fn write_grads(&self, out: &mut [f32]) {
        let mut off = 0;
        for layer in &self.body {
            let n = layer.param_len();
            layer.write_grads(&mut out[off..off + n]);
            off += n;
        }
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.body {
            layer.zero_grads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_body_doubles_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(&mut rng, 3, 3);
        // Make the body the identity map.
        let params: Vec<f32> = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        lin.read_params(&params);
        let mut r = Residual::new(vec![lin.into()]);
        let y = r.forward(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let body: Vec<AnyLayer> =
            vec![Linear::new(&mut rng, 4, 4).into(), crate::activation::Elu::new(4).into()];
        let mut r = Residual::new(body);
        let x = [0.3f32, -0.4, 0.8, 0.1];
        let loss = |r: &mut Residual, x: &[f32]| -> f64 {
            r.forward(x).iter().map(|&v| (v as f64).powi(2) / 2.0).sum()
        };
        let y = r.forward(&x);
        r.zero_grads();
        r.forward(&x);
        let gi = r.backward(&y);
        let mut params = vec![0.0f32; r.param_len()];
        r.write_params(&mut params);
        let mut grads = vec![0.0f32; r.param_len()];
        r.write_grads(&mut grads);
        let eps = 1e-3f32;
        for i in [0usize, 7, params.len() - 1] {
            let mut p = params.clone();
            p[i] += eps;
            r.read_params(&p);
            let up = loss(&mut r, &x);
            p[i] -= 2.0 * eps;
            r.read_params(&p);
            let down = loss(&mut r, &x);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - grads[i] as f64).abs() < 2e-3, "param {i}: fd={fd} got={}", grads[i]);
        }
        r.read_params(&params);
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let up = loss(&mut r, &xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&mut r, &xp);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - gi[i] as f64).abs() < 2e-3, "input {i}: fd={fd} got={}", gi[i]);
        }
    }

    #[test]
    #[should_panic(expected = "preserve the vector length")]
    fn rejects_shape_changing_body() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Residual::new(vec![Linear::new(&mut rng, 4, 3).into()]);
    }
}
