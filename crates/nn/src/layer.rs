//! The layer abstraction: forward, backward, and flat parameter access.
//!
//! DP-SGD (and therefore the whole protocol) needs **per-example** gradients,
//! so the entire stack processes one example at a time: `forward` caches what
//! `backward` needs, `backward` accumulates parameter gradients and returns the
//! input gradient. Layers are plain `Clone` values — every simulated worker
//! owns its own model replica, exactly like a real federated deployment.

use crate::activation::{Elu, Relu};
use crate::conv::Conv2d;
use crate::linear::Linear;
use crate::norm::GroupNorm;
use crate::pool::AdaptiveAvgPool2d;
use crate::residual::Residual;

/// A differentiable layer processing one example per call.
pub trait Layer {
    /// Computes the layer output for `input`, caching activations needed by
    /// [`Layer::backward`].
    fn forward(&mut self, input: &[f32]) -> Vec<f32>;

    /// Propagates `grad_output` back through the most recent `forward` call:
    /// accumulates parameter gradients and returns the gradient with respect
    /// to the input.
    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32>;

    /// Batched forward over `batch` examples packed back to back in `input`
    /// (`batch · input_len()` values); returns `batch · output_len()` values
    /// and caches what [`Layer::backward_batch`] needs.
    ///
    /// Contract: per-example outputs are **bit-identical** to calling
    /// [`Layer::forward`] once per example — every output scalar is the same
    /// `f32`/`f64` accumulation in the same order, just over batch-contiguous
    /// buffers. This is what lets batched evaluation and server-side
    /// gradients ride the determinism contract unchanged.
    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32>;

    /// Batched backward matching the most recent [`Layer::forward_batch`]:
    /// accumulates parameter gradients (each gradient scalar receives its
    /// per-example contributions in ascending example order — bit-identical
    /// to sequential per-example [`Layer::backward`] calls) and returns the
    /// packed per-example input gradients.
    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32>;

    /// Number of trainable parameters.
    fn param_len(&self) -> usize;

    /// Length of the input this layer expects.
    fn input_len(&self) -> usize;

    /// Length of the output this layer produces.
    fn output_len(&self) -> usize;

    /// Copies parameters into `out` (must be `param_len()` long).
    fn write_params(&self, out: &mut [f32]);

    /// Loads parameters from `src` (must be `param_len()` long).
    fn read_params(&mut self, src: &[f32]);

    /// Copies accumulated gradients into `out` (must be `param_len()` long).
    fn write_grads(&self, out: &mut [f32]);

    /// Zeroes the accumulated parameter gradients.
    fn zero_grads(&mut self);
}

/// Closed set of layer kinds, so models are `Clone` + `Send` without dynamic
/// dispatch. Every variant delegates to the concrete layer's implementation.
#[derive(Debug, Clone)]
pub enum AnyLayer {
    /// Fully-connected layer.
    Linear(Linear),
    /// Valid 2-D convolution.
    Conv2d(Conv2d),
    /// Group normalization without affine parameters.
    GroupNorm(GroupNorm),
    /// Exponential linear unit.
    Elu(Elu),
    /// Rectified linear unit.
    Relu(Relu),
    /// Adaptive average pooling.
    Pool(AdaptiveAvgPool2d),
    /// Residual block `y = x + body(x)`.
    Residual(Residual),
}

macro_rules! delegate {
    ($self:ident, $m:ident $(, $arg:expr)*) => {
        match $self {
            AnyLayer::Linear(l) => l.$m($($arg),*),
            AnyLayer::Conv2d(l) => l.$m($($arg),*),
            AnyLayer::GroupNorm(l) => l.$m($($arg),*),
            AnyLayer::Elu(l) => l.$m($($arg),*),
            AnyLayer::Relu(l) => l.$m($($arg),*),
            AnyLayer::Pool(l) => l.$m($($arg),*),
            AnyLayer::Residual(l) => l.$m($($arg),*),
        }
    };
}

impl Layer for AnyLayer {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        delegate!(self, forward, input)
    }
    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        delegate!(self, backward, grad_output)
    }
    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        delegate!(self, forward_batch, input, batch)
    }
    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        delegate!(self, backward_batch, grad_output, batch)
    }
    fn param_len(&self) -> usize {
        delegate!(self, param_len)
    }
    fn input_len(&self) -> usize {
        delegate!(self, input_len)
    }
    fn output_len(&self) -> usize {
        delegate!(self, output_len)
    }
    fn write_params(&self, out: &mut [f32]) {
        delegate!(self, write_params, out)
    }
    fn read_params(&mut self, src: &[f32]) {
        delegate!(self, read_params, src)
    }
    fn write_grads(&self, out: &mut [f32]) {
        delegate!(self, write_grads, out)
    }
    fn zero_grads(&mut self) {
        delegate!(self, zero_grads)
    }
}

impl From<Linear> for AnyLayer {
    fn from(l: Linear) -> Self {
        AnyLayer::Linear(l)
    }
}
impl From<Conv2d> for AnyLayer {
    fn from(l: Conv2d) -> Self {
        AnyLayer::Conv2d(l)
    }
}
impl From<GroupNorm> for AnyLayer {
    fn from(l: GroupNorm) -> Self {
        AnyLayer::GroupNorm(l)
    }
}
impl From<Elu> for AnyLayer {
    fn from(l: Elu) -> Self {
        AnyLayer::Elu(l)
    }
}
impl From<Relu> for AnyLayer {
    fn from(l: Relu) -> Self {
        AnyLayer::Relu(l)
    }
}
impl From<AdaptiveAvgPool2d> for AnyLayer {
    fn from(l: AdaptiveAvgPool2d) -> Self {
        AnyLayer::Pool(l)
    }
}
impl From<Residual> for AnyLayer {
    fn from(l: Residual) -> Self {
        AnyLayer::Residual(l)
    }
}
