//! Group normalization without affine parameters.
//!
//! The paper's MNIST network uses `GroupNorm(num_groups=4, num_channels=16)`
//! three times; its reported parameter count (`d = 21 802`) is only consistent
//! with the **affine-free** variant, so that is what we implement: each group
//! of `C/G` channels is normalized to zero mean / unit variance over its
//! `(C/G)·H·W` elements, with no learned scale or shift.

use crate::layer::Layer;

/// Affine-free group normalization over `[C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    groups: usize,
    channels: usize,
    spatial: usize,
    eps: f32,
    /// Cached normalized output `y` (needed by backward).
    cached_norm: Vec<f32>,
    /// Cached `1/√(var+eps)` per group.
    cached_inv_std: Vec<f32>,
}

impl GroupNorm {
    /// New layer normalizing `channels` feature maps of `h × w` in `groups`
    /// groups.
    pub fn new(groups: usize, channels: usize, h: usize, w: usize) -> Self {
        assert!(groups > 0 && channels.is_multiple_of(groups), "channels must divide into groups");
        GroupNorm {
            groups,
            channels,
            spatial: h * w,
            eps: 1e-5,
            cached_norm: Vec::new(),
            cached_inv_std: Vec::new(),
        }
    }

    fn group_size(&self) -> usize {
        (self.channels / self.groups) * self.spatial
    }
}

/// Normalizes one example's `[C, H, W]` block into `out`, appending one
/// `1/√(var+eps)` per group to `inv_stds`. Shared by the per-example and the
/// batched forward so the two paths are bit-identical by construction.
fn normalize_example(
    groups: usize,
    gsize: usize,
    eps: f32,
    input: &[f32],
    out: &mut [f32],
    inv_stds: &mut Vec<f32>,
) {
    for g in 0..groups {
        let chunk = &input[g * gsize..(g + 1) * gsize];
        let mean = chunk.iter().map(|&x| x as f64).sum::<f64>() / gsize as f64;
        let var = chunk.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / gsize as f64;
        let inv_std = 1.0 / (var + eps as f64).sqrt();
        inv_stds.push(inv_std as f32);
        let out_chunk = &mut out[g * gsize..(g + 1) * gsize];
        for (o, &x) in out_chunk.iter_mut().zip(chunk) {
            *o = ((x as f64 - mean) * inv_std) as f32;
        }
    }
}

/// `dx = inv_std · (dy − mean(dy) − y · mean(dy ⊙ y))` for one example, given
/// its cached normalized output `norm` and per-group `inv_stds`.
fn backward_example(
    groups: usize,
    gsize: usize,
    norm: &[f32],
    inv_stds: &[f32],
    grad_output: &[f32],
    grad_in: &mut [f32],
) {
    for g in 0..groups {
        let y = &norm[g * gsize..(g + 1) * gsize];
        let dy = &grad_output[g * gsize..(g + 1) * gsize];
        let inv_std = inv_stds[g] as f64;
        let mean_dy = dy.iter().map(|&v| v as f64).sum::<f64>() / gsize as f64;
        let mean_dy_y =
            dy.iter().zip(y).map(|(&d, &v)| d as f64 * v as f64).sum::<f64>() / gsize as f64;
        let gi = &mut grad_in[g * gsize..(g + 1) * gsize];
        for ((o, &d), &v) in gi.iter_mut().zip(dy).zip(y) {
            *o = (inv_std * (d as f64 - mean_dy - v as f64 * mean_dy_y)) as f32;
        }
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let n = self.channels * self.spatial;
        assert_eq!(input.len(), n, "GroupNorm: bad input length");
        let gsize = self.group_size();
        let mut out = vec![0.0f32; n];
        self.cached_inv_std.clear();
        normalize_example(self.groups, gsize, self.eps, input, &mut out, &mut self.cached_inv_std);
        self.cached_norm.clear();
        self.cached_norm.extend_from_slice(&out);
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        let n = self.channels * self.spatial;
        assert_eq!(grad_output.len(), n, "GroupNorm: bad grad length");
        assert_eq!(self.cached_norm.len(), n, "backward before forward");
        let mut grad_in = vec![0.0f32; n];
        backward_example(
            self.groups,
            self.group_size(),
            &self.cached_norm,
            &self.cached_inv_std,
            grad_output,
            &mut grad_in,
        );
        grad_in
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let n = self.channels * self.spatial;
        assert_eq!(input.len(), batch * n, "GroupNorm: bad batch input length");
        let gsize = self.group_size();
        let mut out = vec![0.0f32; batch * n];
        self.cached_inv_std.clear();
        for bi in 0..batch {
            normalize_example(
                self.groups,
                gsize,
                self.eps,
                &input[bi * n..(bi + 1) * n],
                &mut out[bi * n..(bi + 1) * n],
                &mut self.cached_inv_std,
            );
        }
        self.cached_norm.clear();
        self.cached_norm.extend_from_slice(&out);
        out
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        let n = self.channels * self.spatial;
        assert_eq!(grad_output.len(), batch * n, "GroupNorm: bad batch grad length");
        assert_eq!(
            self.cached_norm.len(),
            batch * n,
            "GroupNorm: backward_batch before forward_batch"
        );
        let mut grad_in = vec![0.0f32; batch * n];
        for bi in 0..batch {
            backward_example(
                self.groups,
                self.group_size(),
                &self.cached_norm[bi * n..(bi + 1) * n],
                &self.cached_inv_std[bi * self.groups..(bi + 1) * self.groups],
                &grad_output[bi * n..(bi + 1) * n],
                &mut grad_in[bi * n..(bi + 1) * n],
            );
        }
        grad_in
    }

    fn param_len(&self) -> usize {
        0
    }

    fn input_len(&self) -> usize {
        self.channels * self.spatial
    }

    fn output_len(&self) -> usize {
        self.channels * self.spatial
    }

    fn write_params(&self, _out: &mut [f32]) {}
    fn read_params(&mut self, _src: &[f32]) {}
    fn write_grads(&self, _out: &mut [f32]) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_normalized_per_group() {
        let mut gn = GroupNorm::new(2, 4, 2, 2); // 2 groups × (2ch · 4px) = 8 each
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = gn.forward(&input);
        for g in 0..2 {
            let chunk = &out[g * 8..(g + 1) * 8];
            let mean: f32 = chunk.iter().sum::<f32>() / 8.0;
            let var: f32 = chunk.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "group {g} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "group {g} var {var}");
        }
    }

    #[test]
    fn has_no_parameters() {
        let gn = GroupNorm::new(4, 16, 5, 5);
        assert_eq!(gn.param_len(), 0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut gn = GroupNorm::new(2, 4, 2, 3);
        let x: Vec<f32> = (0..24).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.3).collect();
        // Weighted loss L = Σ w_i y_i with fixed weights, so dL/dy = w.
        let w: Vec<f32> = (0..24).map(|i| ((i % 5) as f32 - 2.0) * 0.5).collect();
        let loss = |gn: &mut GroupNorm, x: &[f32]| -> f64 {
            let y = gn.forward(x);
            y.iter().zip(&w).map(|(&a, &b)| a as f64 * b as f64).sum()
        };
        gn.forward(&x);
        let gi = gn.backward(&w);
        let eps = 1e-3f32;
        for i in [0usize, 5, 11, 17, 23] {
            let mut xp = x.clone();
            xp[i] += eps;
            let up = loss(&mut gn, &xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&mut gn, &xp);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - gi[i] as f64).abs() < 1e-2, "coord {i}: fd={fd} got={}", gi[i]);
        }
    }

    #[test]
    fn gradient_of_constant_direction_is_zero() {
        // GroupNorm output is invariant to adding a constant to a group, so
        // backward of any dy must produce per-group zero-sum input gradients.
        let mut gn = GroupNorm::new(1, 2, 2, 2);
        let x: Vec<f32> = vec![1.0, 3.0, -2.0, 0.5, 4.0, -1.0, 2.0, 0.0];
        gn.forward(&x);
        let gi = gn.backward(&[1.0, -0.5, 0.25, 2.0, -1.0, 0.0, 0.5, 1.5]);
        let sum: f32 = gi.iter().sum();
        assert!(sum.abs() < 1e-4, "per-group gradient sum {sum}");
    }
}
