//! Model checkpointing: flat parameter vectors with integrity metadata.
//!
//! Federated deployments persist the global model between rounds and ship it
//! to late-joining workers; the checkpoint format here is deliberately
//! minimal — architecture tag, dimension, and the flat `f32` parameters the
//! whole stack already exchanges — with a checksum so corrupted files fail
//! loudly instead of training quietly wrong.

use crate::sequential::Sequential;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of a model's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Free-form architecture tag (e.g. `"mlp_784"`); checked on load.
    pub architecture: String,
    /// Parameter count `d`; checked on load.
    pub param_len: usize,
    /// Training iteration the snapshot was taken at.
    pub iteration: usize,
    /// The flat parameter vector.
    pub params: Vec<f32>,
    /// FNV-1a checksum of the parameter bytes.
    pub checksum: u64,
}

/// Errors from loading a checkpoint into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The architecture tag does not match.
    ArchitectureMismatch {
        /// Tag stored in the checkpoint.
        stored: String,
        /// Tag the caller expected.
        expected: String,
    },
    /// The parameter count does not match the model.
    DimensionMismatch {
        /// Count stored in the checkpoint.
        stored: usize,
        /// The model's parameter count.
        expected: usize,
    },
    /// The checksum does not match the parameters (corruption).
    ChecksumMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::ArchitectureMismatch { stored, expected } => {
                write!(f, "checkpoint architecture {stored:?} does not match {expected:?}")
            }
            CheckpointError::DimensionMismatch { stored, expected } => {
                write!(f, "checkpoint has {stored} parameters, model has {expected}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over the little-endian parameter bytes.
fn checksum(params: &[f32]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &p in params {
        for b in p.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

impl Checkpoint {
    /// Snapshots a model's parameters.
    pub fn capture(model: &Sequential, architecture: impl Into<String>, iteration: usize) -> Self {
        let params = model.params();
        let checksum = checksum(&params);
        Checkpoint {
            architecture: architecture.into(),
            param_len: params.len(),
            iteration,
            params,
            checksum,
        }
    }

    /// Restores the snapshot into `model`, verifying the tag, dimension, and
    /// checksum.
    pub fn restore(
        &self,
        model: &mut Sequential,
        expected_architecture: &str,
    ) -> Result<(), CheckpointError> {
        if self.architecture != expected_architecture {
            return Err(CheckpointError::ArchitectureMismatch {
                stored: self.architecture.clone(),
                expected: expected_architecture.to_string(),
            });
        }
        if self.param_len != model.param_len() || self.params.len() != model.param_len() {
            return Err(CheckpointError::DimensionMismatch {
                stored: self.param_len,
                expected: model.param_len(),
            });
        }
        if checksum(&self.params) != self.checksum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        model.set_params(&self.params);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn capture_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = zoo::mlp(&mut rng, 8, 4, 3);
        let ckpt = Checkpoint::capture(&model, "tiny", 42);
        let mut other = zoo::mlp(&mut rng, 8, 4, 3);
        assert_ne!(other.params(), model.params());
        ckpt.restore(&mut other, "tiny").expect("restore");
        assert_eq!(other.params(), model.params());
        assert_eq!(ckpt.iteration, 42);
    }

    #[test]
    fn rejects_wrong_architecture_and_dimension() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = zoo::mlp(&mut rng, 8, 4, 3);
        let ckpt = Checkpoint::capture(&model, "tiny", 0);
        let mut other = zoo::mlp(&mut rng, 8, 4, 3);
        assert!(matches!(
            ckpt.restore(&mut other, "big"),
            Err(CheckpointError::ArchitectureMismatch { .. })
        ));
        let mut wrong_shape = zoo::mlp(&mut rng, 9, 4, 3);
        assert!(matches!(
            ckpt.restore(&mut wrong_shape, "tiny"),
            Err(CheckpointError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn detects_corruption() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = zoo::mlp(&mut rng, 8, 4, 3);
        let mut ckpt = Checkpoint::capture(&model, "tiny", 0);
        ckpt.params[0] += 1.0;
        let mut other = zoo::mlp(&mut rng, 8, 4, 3);
        assert_eq!(ckpt.restore(&mut other, "tiny"), Err(CheckpointError::ChecksumMismatch));
    }

    #[test]
    fn survives_json_serialization() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = zoo::mlp(&mut rng, 6, 3, 2);
        let ckpt = Checkpoint::capture(&model, "json-test", 7);
        let json = serde_json::to_string(&ckpt).expect("serialize");
        let back: Checkpoint = serde_json::from_str(&json).expect("deserialize");
        let mut restored = zoo::mlp(&mut rng, 6, 3, 2);
        back.restore(&mut restored, "json-test").expect("restore");
        assert_eq!(restored.params(), model.params());
    }
}
