//! Adaptive average pooling layer (wraps the `dpbfl-tensor` kernels).

use crate::layer::Layer;
use dpbfl_tensor::pool::{adaptive_avg_pool2d_backward, adaptive_avg_pool2d_forward};

/// `AdaptiveAvgPool2d((out_h, out_w))` over `[C, H, W]` inputs — the paper's
/// MNIST network pools its final 16×16 feature maps to 4×4.
#[derive(Debug, Clone)]
pub struct AdaptiveAvgPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    out_h: usize,
    out_w: usize,
}

impl AdaptiveAvgPool2d {
    /// New pooling layer for the given geometry.
    pub fn new(channels: usize, in_h: usize, in_w: usize, out_h: usize, out_w: usize) -> Self {
        assert!(out_h <= in_h && out_w <= in_w, "adaptive pool cannot upsample");
        AdaptiveAvgPool2d { channels, in_h, in_w, out_h, out_w }
    }
}

impl Layer for AdaptiveAvgPool2d {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.output_len()];
        adaptive_avg_pool2d_forward(
            self.channels,
            self.in_h,
            self.in_w,
            self.out_h,
            self.out_w,
            input,
            &mut out,
        );
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        let mut grad_in = vec![0.0f32; self.input_len()];
        adaptive_avg_pool2d_backward(
            self.channels,
            self.in_h,
            self.in_w,
            self.out_h,
            self.out_w,
            grad_output,
            &mut grad_in,
        );
        grad_in
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let (in_len, out_len) = (self.input_len(), self.output_len());
        assert_eq!(input.len(), batch * in_len, "Pool: bad batch input length");
        // Pooling is stateless and linear: one kernel call per example into a
        // shared output buffer, bit-identical to `forward` by construction.
        let mut out = vec![0.0f32; batch * out_len];
        for bi in 0..batch {
            adaptive_avg_pool2d_forward(
                self.channels,
                self.in_h,
                self.in_w,
                self.out_h,
                self.out_w,
                &input[bi * in_len..(bi + 1) * in_len],
                &mut out[bi * out_len..(bi + 1) * out_len],
            );
        }
        out
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        let (in_len, out_len) = (self.input_len(), self.output_len());
        assert_eq!(grad_output.len(), batch * out_len, "Pool: bad batch grad length");
        let mut grad_in = vec![0.0f32; batch * in_len];
        for bi in 0..batch {
            adaptive_avg_pool2d_backward(
                self.channels,
                self.in_h,
                self.in_w,
                self.out_h,
                self.out_w,
                &grad_output[bi * out_len..(bi + 1) * out_len],
                &mut grad_in[bi * in_len..(bi + 1) * in_len],
            );
        }
        grad_in
    }

    fn param_len(&self) -> usize {
        0
    }
    fn input_len(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }
    fn output_len(&self) -> usize {
        self.channels * self.out_h * self.out_w
    }
    fn write_params(&self, _out: &mut [f32]) {}
    fn read_params(&mut self, _src: &[f32]) {}
    fn write_grads(&self, _out: &mut [f32]) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_shapes() {
        let mut p = AdaptiveAvgPool2d::new(16, 16, 16, 4, 4);
        assert_eq!(p.input_len(), 16 * 256);
        assert_eq!(p.output_len(), 16 * 16);
        let x = vec![1.0f32; p.input_len()];
        let y = p.forward(&x);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let g = p.backward(&y);
        assert_eq!(g.len(), p.input_len());
    }
}
