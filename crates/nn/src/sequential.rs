//! Sequential model with flat parameter/gradient vectors.
//!
//! Federated learning exchanges *flat* `d`-dimensional vectors: the server
//! broadcasts `w ∈ R^d`, workers upload `g ∈ R^d`. `Sequential` provides that
//! interface: [`Sequential::params`] / [`Sequential::set_params`] /
//! [`Sequential::write_grads_into`] flatten every layer in order.

use crate::layer::{AnyLayer, Layer};
use crate::loss::CrossEntropyLoss;

/// A stack of layers applied in order, with flat parameter I/O.
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<AnyLayer>,
    param_len: usize,
}

impl Sequential {
    /// Builds a model from layers, checking shape compatibility between every
    /// consecutive pair.
    pub fn new(layers: Vec<AnyLayer>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_len(),
                pair[1].input_len(),
                "consecutive layers are shape-incompatible ({} -> {})",
                pair[0].output_len(),
                pair[1].input_len()
            );
        }
        let param_len = layers.iter().map(|l| l.param_len()).sum();
        Sequential { layers, param_len }
    }

    /// Number of trainable parameters `d`.
    #[inline]
    pub fn param_len(&self) -> usize {
        self.param_len
    }

    /// Expected input length.
    pub fn input_len(&self) -> usize {
        self.layers.first().expect("non-empty").input_len()
    }

    /// Output length (number of classes for the paper's classifiers).
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty").output_len()
    }

    /// Forward pass for one example; caches activations for
    /// [`Sequential::backward`].
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut h = self.layers[0].forward(input);
        for layer in &mut self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }

    /// Backward pass; accumulates per-layer parameter gradients and returns
    /// the input gradient.
    pub fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Batched forward over `batch` examples packed back to back in `inputs`.
    ///
    /// Per-example logits are **bit-identical** to calling
    /// [`Sequential::forward`] once per example (every layer's batched kernel
    /// preserves the per-output accumulation order), so batched evaluation
    /// cannot perturb the determinism contract.
    pub fn forward_batch(&mut self, inputs: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(inputs.len(), batch * self.input_len(), "bad batched input length");
        let mut h = self.layers[0].forward_batch(inputs, batch);
        for layer in &mut self.layers[1..] {
            h = layer.forward_batch(&h, batch);
        }
        h
    }

    /// Batched backward matching the most recent [`Sequential::forward_batch`]:
    /// accumulates parameter gradients (bit-identical to sequential
    /// per-example backward passes) and returns the packed input gradients.
    pub fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_output.len(), batch * self.output_len(), "bad batched gradient length");
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward_batch(&g, batch);
        }
        g
    }

    /// Class predictions (per-row argmax of the batched logits) for `batch`
    /// packed examples.
    pub fn predict_batch(&mut self, inputs: &[f32], batch: usize) -> Vec<usize> {
        let k = self.output_len();
        let logits = self.forward_batch(inputs, batch);
        logits.chunks_exact(k).map(crate::metrics::argmax).collect()
    }

    /// Flattened copy of all parameters.
    pub fn params(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.param_len];
        self.write_params_into(&mut out);
        out
    }

    /// Writes flattened parameters into `out` (length `param_len()`).
    pub fn write_params_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_len, "bad parameter buffer length");
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_len();
            layer.write_params(&mut out[off..off + n]);
            off += n;
        }
    }

    /// Loads flattened parameters (the server's model broadcast).
    pub fn set_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.param_len, "bad parameter vector length");
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.param_len();
            layer.read_params(&src[off..off + n]);
            off += n;
        }
    }

    /// Writes flattened accumulated gradients into `out`.
    pub fn write_grads_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.param_len, "bad gradient buffer length");
        let mut off = 0;
        for layer in &self.layers {
            let n = layer.param_len();
            layer.write_grads(&mut out[off..off + n]);
            off += n;
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Per-example loss and gradient: zeroes grads, runs forward + softmax
    /// cross-entropy + backward, and writes the flat gradient `∇f(x; w)` into
    /// `grad_out`. Returns the loss.
    ///
    /// This is the exact quantity `g_j ← ∇f(x_j ∈ d_i; w^{t−1})` of
    /// Algorithm 1 line 7.
    pub fn example_gradient(
        &mut self,
        loss_fn: &CrossEntropyLoss,
        x: &[f32],
        label: usize,
        grad_out: &mut [f32],
    ) -> f64 {
        self.zero_grads();
        let logits = self.forward(x);
        let (loss, grad_logits) = loss_fn.loss_and_grad(&logits, label);
        self.backward(&grad_logits);
        self.write_grads_into(grad_out);
        loss
    }

    /// Average gradient over a labelled batch (used by the server on its
    /// auxiliary data, Algorithm 3 line 4: `g_s ← ∇f(D_p; w)`), written into
    /// `grad_out`. Returns the mean loss.
    ///
    /// Packs the examples and delegates to
    /// [`Sequential::batch_gradient_packed`]; callers that already hold a
    /// packed feature matrix (the server does) should call that directly.
    pub fn batch_gradient(
        &mut self,
        loss_fn: &CrossEntropyLoss,
        examples: &[(&[f32], usize)],
        grad_out: &mut [f32],
    ) -> f64 {
        assert!(!examples.is_empty(), "batch_gradient needs at least one example");
        let in_len = self.input_len();
        let mut xs = Vec::with_capacity(examples.len() * in_len);
        let mut labels = Vec::with_capacity(examples.len());
        for &(x, label) in examples {
            assert_eq!(x.len(), in_len, "bad example length");
            xs.extend_from_slice(x);
            labels.push(label);
        }
        self.batch_gradient_packed(loss_fn, &xs, &labels, grad_out)
    }

    /// Average gradient over a packed labelled batch (`xs` holds the examples
    /// back to back): one batched forward, per-example softmax-cross-entropy
    /// gradients, one batched backward.
    ///
    /// Bit-identical to the per-example loop it replaced: the batched logits
    /// match per-example `forward` exactly, and every parameter-gradient
    /// scalar accumulates its per-example contributions in the same
    /// (ascending example) order.
    pub fn batch_gradient_packed(
        &mut self,
        loss_fn: &CrossEntropyLoss,
        xs: &[f32],
        labels: &[usize],
        grad_out: &mut [f32],
    ) -> f64 {
        let batch = labels.len();
        assert!(batch > 0, "batch_gradient needs at least one example");
        assert_eq!(xs.len(), batch * self.input_len(), "features/labels disagree");
        self.zero_grads();
        let logits = self.forward_batch(xs, batch);
        let k = self.output_len();
        let mut grad_logits = vec![0.0f32; batch * k];
        let mut total_loss = 0.0f64;
        for (bi, &label) in labels.iter().enumerate() {
            let (loss, g) = loss_fn.loss_and_grad(&logits[bi * k..(bi + 1) * k], label);
            total_loss += loss;
            grad_logits[bi * k..(bi + 1) * k].copy_from_slice(&g);
        }
        self.backward_batch(&grad_logits, batch);
        self.write_grads_into(grad_out);
        let inv = 1.0 / batch as f32;
        for g in grad_out.iter_mut() {
            *g *= inv;
        }
        total_loss / batch as f64
    }

    /// Class prediction (argmax of logits) for one example.
    pub fn predict(&mut self, x: &[f32]) -> usize {
        let logits = self.forward(x);
        crate::metrics::argmax(&logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Elu;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Linear::new(&mut rng, 6, 5).into(),
            Elu::new(5).into(),
            Linear::new(&mut rng, 5, 3).into(),
        ])
    }

    #[test]
    fn param_roundtrip_through_flat_vector() {
        let mut m = tiny_mlp(0);
        assert_eq!(m.param_len(), 6 * 5 + 5 + 5 * 3 + 3);
        let p = m.params();
        let mut other = tiny_mlp(99);
        assert_ne!(other.params(), p);
        other.set_params(&p);
        assert_eq!(other.params(), p);
        // Identical params → identical predictions.
        let x: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
        assert_eq!(m.forward(&x), other.forward(&x));
    }

    #[test]
    #[should_panic(expected = "shape-incompatible")]
    fn rejects_mismatched_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Sequential::new(vec![
            Linear::new(&mut rng, 4, 3).into(),
            Linear::new(&mut rng, 5, 2).into(),
        ]);
    }

    #[test]
    fn example_gradient_matches_finite_differences() {
        let mut m = tiny_mlp(7);
        let loss_fn = CrossEntropyLoss;
        let x: Vec<f32> = vec![0.2, -0.1, 0.5, 0.9, -0.4, 0.3];
        let label = 2usize;
        let mut grad = vec![0.0f32; m.param_len()];
        m.example_gradient(&loss_fn, &x, label, &mut grad);

        let params = m.params();
        let eps = 1e-3f32;
        for i in [0usize, 10, 25, params.len() - 1] {
            let mut p = params.clone();
            p[i] += eps;
            m.set_params(&p);
            let up = {
                let logits = m.forward(&x);
                loss_fn.loss_and_grad(&logits, label).0
            };
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let down = {
                let logits = m.forward(&x);
                loss_fn.loss_and_grad(&logits, label).0
            };
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - grad[i] as f64).abs() < 2e-3, "param {i}: fd={fd} got={}", grad[i]);
        }
    }

    #[test]
    fn batch_gradient_is_mean_of_example_gradients() {
        let mut m = tiny_mlp(13);
        let loss_fn = CrossEntropyLoss;
        let x1: Vec<f32> = vec![0.1; 6];
        let x2: Vec<f32> = vec![-0.3, 0.2, 0.0, 0.5, 0.1, -0.2];
        let mut g1 = vec![0.0f32; m.param_len()];
        let mut g2 = vec![0.0f32; m.param_len()];
        m.example_gradient(&loss_fn, &x1, 0, &mut g1);
        m.example_gradient(&loss_fn, &x2, 1, &mut g2);
        let mut gb = vec![0.0f32; m.param_len()];
        m.batch_gradient(&loss_fn, &[(&x1, 0), (&x2, 1)], &mut gb);
        for i in 0..gb.len() {
            let want = 0.5 * (g1[i] + g2[i]);
            assert!((gb[i] - want).abs() < 1e-5, "coord {i}");
        }
    }
}
