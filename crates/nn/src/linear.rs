//! Fully-connected layer.

use crate::init::kaiming_uniform;
use crate::layer::Layer;
use dpbfl_tensor::matmul::{gemm, gemm_nt, gemm_tn_accumulate, ger, matvec, matvec_transposed};
use rand::Rng;

/// `y = W x + b` with `W: [out × in]` row-major.
#[derive(Debug, Clone)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
}

impl Linear {
    /// New layer with PyTorch-default initialization.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        let mut weight = vec![0.0f32; out_dim * in_dim];
        kaiming_uniform(rng, in_dim, &mut weight);
        let mut bias = vec![0.0f32; out_dim];
        kaiming_uniform(rng, in_dim, &mut bias);
        Linear {
            in_dim,
            out_dim,
            weight,
            bias,
            grad_weight: vec![0.0; out_dim * in_dim],
            grad_bias: vec![0.0; out_dim],
            cached_input: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_dim, "Linear: bad input length");
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let mut out = self.bias.clone();
        let mut tmp = vec![0.0f32; self.out_dim];
        matvec(&self.weight, input, &mut tmp, self.out_dim, self.in_dim);
        for (o, t) in out.iter_mut().zip(&tmp) {
            *o += t;
        }
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.out_dim, "Linear: bad grad length");
        assert_eq!(self.cached_input.len(), self.in_dim, "Linear: backward before forward");
        // dW += dy ⊗ x, db += dy, dx = Wᵀ dy.
        ger(1.0, grad_output, &self.cached_input, &mut self.grad_weight, self.out_dim, self.in_dim);
        for (gb, &g) in self.grad_bias.iter_mut().zip(grad_output) {
            *gb += g;
        }
        let mut grad_in = vec![0.0f32; self.in_dim];
        matvec_transposed(&self.weight, grad_output, &mut grad_in, self.out_dim, self.in_dim);
        grad_in
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.in_dim, "Linear: bad batch input length");
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let mut out = vec![0.0f32; batch * self.out_dim];
        // One X·Wᵀ GEMM; adding the bias after the dot is the same
        // `bias + ⟨w_o, x⟩` sum as the per-example path (f32 addition is
        // commutative bit-for-bit).
        gemm_nt(input, &self.weight, &mut out, batch, self.in_dim, self.out_dim);
        for row in out.chunks_exact_mut(self.out_dim) {
            for (o, &b) in row.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
        out
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_output.len(), batch * self.out_dim, "Linear: bad batch grad length");
        assert_eq!(
            self.cached_input.len(),
            batch * self.in_dim,
            "Linear: backward_batch before forward_batch"
        );
        // dW += dYᵀ X (per-scalar accumulation in example order, like
        // sequential `ger` calls), db += column sums of dY, dX = dY · W.
        gemm_tn_accumulate(
            grad_output,
            &self.cached_input,
            &mut self.grad_weight,
            batch,
            self.out_dim,
            self.in_dim,
        );
        for row in grad_output.chunks_exact(self.out_dim) {
            for (gb, &g) in self.grad_bias.iter_mut().zip(row) {
                *gb += g;
            }
        }
        let mut grad_in = vec![0.0f32; batch * self.in_dim];
        gemm(grad_output, &self.weight, &mut grad_in, batch, self.out_dim, self.in_dim);
        grad_in
    }

    fn param_len(&self) -> usize {
        self.out_dim * self.in_dim + self.out_dim
    }

    fn input_len(&self) -> usize {
        self.in_dim
    }

    fn output_len(&self) -> usize {
        self.out_dim
    }

    fn write_params(&self, out: &mut [f32]) {
        let nw = self.weight.len();
        out[..nw].copy_from_slice(&self.weight);
        out[nw..].copy_from_slice(&self.bias);
    }

    fn read_params(&mut self, src: &[f32]) {
        let nw = self.weight.len();
        self.weight.copy_from_slice(&src[..nw]);
        self.bias.copy_from_slice(&src[nw..]);
    }

    fn write_grads(&self, out: &mut [f32]) {
        let nw = self.grad_weight.len();
        out[..nw].copy_from_slice(&self.grad_weight);
        out[nw..].copy_from_slice(&self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_hand_example() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(&mut rng, 2, 2);
        l.read_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]); // W=[[1,2],[3,4]], b=[0.5,-0.5]
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(&mut rng, 3, 4);
        assert_eq!(l.param_len(), 16);
        let mut p = vec![0.0f32; 16];
        l.write_params(&mut p);
        let q: Vec<f32> = (0..16).map(|i| i as f32).collect();
        l.read_params(&q);
        let mut p2 = vec![0.0f32; 16];
        l.write_params(&mut p2);
        assert_eq!(p2, q);
        assert_ne!(p, q);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(&mut rng, 4, 3);
        let x = [0.3f32, -0.2, 0.7, 0.1];
        // Scalar loss = Σ y_i² / 2, so dL/dy = y.
        let y = l.forward(&x);
        let gi = l.backward(&y);

        let mut params = vec![0.0f32; l.param_len()];
        l.write_params(&mut params);
        let mut grads = vec![0.0f32; l.param_len()];
        l.write_grads(&mut grads);

        let loss = |l: &mut Linear, x: &[f32]| -> f64 {
            let y = l.forward(x);
            y.iter().map(|&v| (v as f64) * (v as f64) / 2.0).sum()
        };

        let eps = 1e-3f32;
        for i in [0usize, 5, 11, l.param_len() - 1] {
            let mut p = params.clone();
            p[i] += eps;
            l.read_params(&p);
            let up = loss(&mut l, &x);
            p[i] -= 2.0 * eps;
            l.read_params(&p);
            let down = loss(&mut l, &x);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - grads[i] as f64).abs() < 1e-3, "param {i}: fd={fd} got={}", grads[i]);
        }
        l.read_params(&params);
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let up = loss(&mut l, &xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&mut l, &xp);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - gi[i] as f64).abs() < 1e-3, "input {i}: fd={fd} got={}", gi[i]);
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(&mut rng, 2, 2);
        let x = [1.0f32, 2.0];
        l.forward(&x);
        l.backward(&[1.0, 1.0]);
        let mut g1 = vec![0.0f32; l.param_len()];
        l.write_grads(&mut g1);
        l.forward(&x);
        l.backward(&[1.0, 1.0]);
        let mut g2 = vec![0.0f32; l.param_len()];
        l.write_grads(&mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
        l.zero_grads();
        let mut g3 = vec![0.0f32; l.param_len()];
        l.write_grads(&mut g3);
        assert!(g3.iter().all(|&v| v == 0.0));
    }
}
