//! Softmax cross-entropy loss.

/// Numerically-stable softmax cross-entropy over logits.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Loss value and gradient with respect to the logits for a single
    /// example: `L = −log softmax(logits)[label]`,
    /// `∂L/∂logits = softmax(logits) − onehot(label)`.
    pub fn loss_and_grad(&self, logits: &[f32], label: usize) -> (f64, Vec<f32>) {
        assert!(label < logits.len(), "label {label} out of range for {} logits", logits.len());
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f64> = logits.iter().map(|&z| ((z - max) as f64).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let log_sum = sum.ln();
        let loss = log_sum - (logits[label] - max) as f64;
        let grad: Vec<f32> = exp
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                let p = e / sum;
                (p - if i == label { 1.0 } else { 0.0 }) as f32
            })
            .collect();
        (loss, grad)
    }

    /// Softmax probabilities (for calibration inspection / examples).
    pub fn softmax(&self, logits: &[f32]) -> Vec<f64> {
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f64> = logits.iter().map(|&z| ((z - max) as f64).exp()).collect();
        let sum: f64 = exp.iter().sum();
        exp.into_iter().map(|e| e / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let l = CrossEntropyLoss;
        let (loss, grad) = l.loss_and_grad(&[0.0; 4], 1);
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
        assert!((grad[1] - (-0.75)).abs() < 1e-6);
        for &i in &[0usize, 2, 3] {
            assert!((grad[i] - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let l = CrossEntropyLoss;
        let (loss, _) = l.loss_and_grad(&[10.0, -10.0, -10.0], 0);
        assert!(loss < 1e-6);
        let (bad_loss, _) = l.loss_and_grad(&[10.0, -10.0, -10.0], 1);
        assert!(bad_loss > 19.0);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let l = CrossEntropyLoss;
        let (_, grad) = l.loss_and_grad(&[1.5, -0.3, 0.2, 2.0, -1.0], 3);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn stable_under_large_logits() {
        let l = CrossEntropyLoss;
        let (loss, grad) = l.loss_and_grad(&[1000.0, 999.0], 0);
        assert!(loss.is_finite() && grad.iter().all(|g| g.is_finite()));
        // L = ln(1 + e^{−1}) ≈ 0.31326168751822286
        assert!((loss - 0.313_261_687_518_222_86).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let l = CrossEntropyLoss;
        let logits = [0.5f32, -1.2, 2.0, 0.1];
        let label = 2;
        let (_, grad) = l.loss_and_grad(&logits, label);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits;
            lp[i] += eps;
            let up = l.loss_and_grad(&lp, label).0;
            lp[i] -= 2.0 * eps;
            let down = l.loss_and_grad(&lp, label).0;
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - grad[i] as f64).abs() < 1e-4, "logit {i}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let l = CrossEntropyLoss;
        let p = l.softmax(&[3.0, 1.0, -2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }
}
