//! Parameter initialization (PyTorch-default Kaiming-uniform).

use rand::Rng;

/// Fills `weights` with `U(−1/√fan_in, 1/√fan_in)` — PyTorch's default for
/// `nn.Linear` and `nn.Conv2d` (Kaiming-uniform with `a = √5` collapses to
/// this bound).
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, weights: &mut [f32]) {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = 1.0 / (fan_in as f64).sqrt();
    for w in weights {
        *w = rng.gen_range(-bound..bound) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_respect_bound_and_vary() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut w = vec![0.0f32; 1000];
        kaiming_uniform(&mut rng, 100, &mut w);
        let bound = 0.1f32;
        assert!(w.iter().all(|&x| x.abs() <= bound));
        let distinct = w.iter().filter(|&&x| x != w[0]).count();
        assert!(distinct > 900);
        // Mean near zero.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.01);
    }
}
