//! Convolution layer wrapping the `dpbfl-tensor` kernels.

use crate::init::kaiming_uniform;
use crate::layer::Layer;
use dpbfl_tensor::conv::{
    conv2d_backward_input, conv2d_backward_params, conv2d_forward, conv2d_forward_batch,
    ConvGeometry,
};
use rand::Rng;

/// Valid (no padding) 2-D convolution over `[C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: ConvGeometry,
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
}

impl Conv2d {
    /// New layer for the given geometry, PyTorch-default initialization.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, geom: ConvGeometry) -> Self {
        let fan_in = geom.in_channels * geom.kernel * geom.kernel;
        let mut weight = vec![0.0f32; geom.kernel_len()];
        kaiming_uniform(rng, fan_in, &mut weight);
        let mut bias = vec![0.0f32; geom.out_channels];
        kaiming_uniform(rng, fan_in, &mut bias);
        Conv2d {
            geom,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; bias.len()],
            weight,
            bias,
            cached_input: Vec::new(),
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.geom.input_len(), "Conv2d: bad input length");
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let mut out = vec![0.0f32; self.geom.output_len()];
        conv2d_forward(&self.geom, input, &self.weight, &self.bias, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.geom.output_len(), "Conv2d: bad grad length");
        assert_eq!(self.cached_input.len(), self.geom.input_len(), "backward before forward");
        conv2d_backward_params(
            &self.geom,
            &self.cached_input,
            grad_output,
            &mut self.grad_weight,
            &mut self.grad_bias,
        );
        let mut grad_in = vec![0.0f32; self.geom.input_len()];
        conv2d_backward_input(&self.geom, &self.weight, grad_output, &mut grad_in);
        grad_in
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.geom.input_len(), "Conv2d: bad batch input length");
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let mut out = vec![0.0f32; batch * self.geom.output_len()];
        conv2d_forward_batch(&self.geom, input, &self.weight, &self.bias, &mut out, batch);
        out
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        let (in_len, out_len) = (self.geom.input_len(), self.geom.output_len());
        assert_eq!(grad_output.len(), batch * out_len, "Conv2d: bad batch grad length");
        assert_eq!(
            self.cached_input.len(),
            batch * in_len,
            "Conv2d: backward_batch before forward_batch"
        );
        let mut grad_in = vec![0.0f32; batch * in_len];
        for bi in 0..batch {
            conv2d_backward_params(
                &self.geom,
                &self.cached_input[bi * in_len..(bi + 1) * in_len],
                &grad_output[bi * out_len..(bi + 1) * out_len],
                &mut self.grad_weight,
                &mut self.grad_bias,
            );
            conv2d_backward_input(
                &self.geom,
                &self.weight,
                &grad_output[bi * out_len..(bi + 1) * out_len],
                &mut grad_in[bi * in_len..(bi + 1) * in_len],
            );
        }
        grad_in
    }

    fn param_len(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn input_len(&self) -> usize {
        self.geom.input_len()
    }

    fn output_len(&self) -> usize {
        self.geom.output_len()
    }

    fn write_params(&self, out: &mut [f32]) {
        let nw = self.weight.len();
        out[..nw].copy_from_slice(&self.weight);
        out[nw..].copy_from_slice(&self.bias);
    }

    fn read_params(&mut self, src: &[f32]) {
        let nw = self.weight.len();
        self.weight.copy_from_slice(&src[..nw]);
        self.bias.copy_from_slice(&src[nw..]);
    }

    fn write_grads(&self, out: &mut [f32]) {
        let nw = self.grad_weight.len();
        out[..nw].copy_from_slice(&self.grad_weight);
        out[nw..].copy_from_slice(&self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill(0.0);
        self.grad_bias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> ConvGeometry {
        ConvGeometry { in_channels: 2, out_channels: 3, in_h: 6, in_w: 5, kernel: 3, stride: 1 }
    }

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(&mut rng, geom());
        assert_eq!(c.param_len(), 3 * 2 * 9 + 3);
        assert_eq!(c.input_len(), 2 * 6 * 5);
        assert_eq!(c.output_len(), 3 * 4 * 3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv2d::new(&mut rng, geom());
        let x: Vec<f32> = (0..c.input_len()).map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.1).collect();

        let y = c.forward(&x);
        let gi = c.backward(&y); // loss = Σ y²/2

        let mut params = vec![0.0f32; c.param_len()];
        c.write_params(&mut params);
        let mut grads = vec![0.0f32; c.param_len()];
        c.write_grads(&mut grads);

        let loss = |c: &mut Conv2d, x: &[f32]| -> f64 {
            let y = c.forward(x);
            y.iter().map(|&v| (v as f64) * (v as f64) / 2.0).sum()
        };
        let eps = 1e-3f32;
        for i in [0usize, 17, 33, c.param_len() - 1] {
            let mut p = params.clone();
            p[i] += eps;
            c.read_params(&p);
            let up = loss(&mut c, &x);
            p[i] -= 2.0 * eps;
            c.read_params(&p);
            let down = loss(&mut c, &x);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - grads[i] as f64).abs() < 2e-3, "param {i}: fd={fd} got={}", grads[i]);
        }
        c.read_params(&params);
        for i in [0usize, 13, x.len() - 1] {
            let mut xp = x.clone();
            xp[i] += eps;
            let up = loss(&mut c, &xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&mut c, &xp);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - gi[i] as f64).abs() < 2e-3, "input {i}: fd={fd} got={}", gi[i]);
        }
    }
}
