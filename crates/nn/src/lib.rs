//! # dpbfl-nn
//!
//! Neural-network substrate with **per-example gradients** — the capability
//! DP-SGD requires and the reason the paper's reference implementation needs
//! functorch-style machinery on top of PyTorch. The worker-side training path
//! processes one example at a time, so per-example gradients are the native
//! operation; the server-side paths (evaluation, auxiliary gradients) ride
//! the **batched inference subsystem** — `forward_batch`/`backward_batch` on
//! every layer, GEMM-backed for dense layers and im2col-backed for
//! convolutions — whose outputs are bit-identical to the per-example path by
//! construction (guarded by `tests/batched_parity.rs`).
//!
//! * [`layer`] — the [`layer::Layer`] trait and the closed
//!   [`layer::AnyLayer`] set (models are plain `Clone` values: every
//!   simulated worker owns a replica, like a real federated deployment).
//! * Concrete layers: [`linear`], [`conv`], [`norm`] (affine-free GroupNorm),
//!   [`activation`] (ELU/ReLU), [`pool`], [`residual`].
//! * [`sequential`] — the model container with **flat parameter/gradient
//!   vectors**, the interface federated learning actually exchanges.
//! * [`loss`] — softmax cross-entropy.
//! * [`zoo`] — the paper's exact architectures (MNIST CNN `d = 21 802`,
//!   Fashion/USPS MLP `d = 25 450`, Colorectal-like residual CNN).
//! * [`metrics`] — argmax / accuracy.
//!
//! Every layer's backward pass is validated against central finite
//! differences in its unit tests.

pub mod activation;
pub mod checkpoint;
pub mod conv;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod norm;
pub mod pool;
pub mod residual;
pub mod sequential;
pub mod zoo;

pub use checkpoint::Checkpoint;
pub use layer::{AnyLayer, Layer};
pub use loss::CrossEntropyLoss;
pub use metrics::{accuracy, argmax};
pub use sequential::Sequential;
