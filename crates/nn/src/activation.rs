//! Element-wise activations: ELU (the paper's choice) and ReLU.

use crate::layer::Layer;

/// Exponential linear unit `y = x` for `x > 0`, `α(eˣ − 1)` otherwise.
#[derive(Debug, Clone)]
pub struct Elu {
    len: usize,
    alpha: f32,
    cached_output: Vec<f32>,
    cached_sign: Vec<bool>,
}

impl Elu {
    /// ELU over vectors of length `len` with `α = 1` (PyTorch default).
    pub fn new(len: usize) -> Self {
        Elu { len, alpha: 1.0, cached_output: Vec::new(), cached_sign: Vec::new() }
    }
}

impl Layer for Elu {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        // Element-wise: one example is a batch of one, same bits.
        self.forward_batch(input, 1)
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        self.backward_batch(grad_output, 1)
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len, "Elu: bad input length");
        // Element-wise, so the batch is one flat vectorized pass.
        self.cached_sign.clear();
        let out: Vec<f32> = input
            .iter()
            .map(|&x| {
                let positive = x > 0.0;
                self.cached_sign.push(positive);
                if positive {
                    x
                } else {
                    self.alpha * (x.exp() - 1.0)
                }
            })
            .collect();
        self.cached_output.clear();
        self.cached_output.extend_from_slice(&out);
        out
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_output.len(), batch * self.len, "Elu: bad grad length");
        assert_eq!(self.cached_output.len(), batch * self.len, "backward before forward");
        // d/dx = 1 for x > 0, else y + α (since y = α(eˣ−1) ⇒ α eˣ = y + α).
        grad_output
            .iter()
            .zip(&self.cached_output)
            .zip(&self.cached_sign)
            .map(|((&g, &y), &pos)| if pos { g } else { g * (y + self.alpha) })
            .collect()
    }

    fn param_len(&self) -> usize {
        0
    }
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn write_params(&self, _out: &mut [f32]) {}
    fn read_params(&mut self, _src: &[f32]) {}
    fn write_grads(&self, _out: &mut [f32]) {}
    fn zero_grads(&mut self) {}
}

/// Rectified linear unit `y = max(x, 0)`.
#[derive(Debug, Clone)]
pub struct Relu {
    len: usize,
    cached_sign: Vec<bool>,
}

impl Relu {
    /// ReLU over vectors of length `len`.
    pub fn new(len: usize) -> Self {
        Relu { len, cached_sign: Vec::new() }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        // Element-wise: one example is a batch of one, same bits.
        self.forward_batch(input, 1)
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        self.backward_batch(grad_output, 1)
    }

    fn forward_batch(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len, "Relu: bad input length");
        self.cached_sign.clear();
        input
            .iter()
            .map(|&x| {
                let positive = x > 0.0;
                self.cached_sign.push(positive);
                if positive {
                    x
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn backward_batch(&mut self, grad_output: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_output.len(), batch * self.len, "Relu: bad grad length");
        assert_eq!(self.cached_sign.len(), batch * self.len, "backward before forward");
        grad_output
            .iter()
            .zip(&self.cached_sign)
            .map(|(&g, &pos)| if pos { g } else { 0.0 })
            .collect()
    }

    fn param_len(&self) -> usize {
        0
    }
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn write_params(&self, _out: &mut [f32]) {}
    fn read_params(&mut self, _src: &[f32]) {}
    fn write_grads(&self, _out: &mut [f32]) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elu_forward_values() {
        let mut e = Elu::new(3);
        let y = e.forward(&[1.5, 0.0, -1.0]);
        assert_eq!(y[0], 1.5);
        assert_eq!(y[1], ((0.0f32).exp() - 1.0)); // 0 is "not positive": α(e⁰−1)=0
        assert!((y[2] - ((-1.0f32).exp() - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn elu_backward_finite_difference() {
        let mut e = Elu::new(4);
        let x = [0.5f32, -0.5, 2.0, -2.0];
        let loss = |e: &mut Elu, x: &[f32]| -> f64 {
            e.forward(x).iter().map(|&v| (v as f64).powi(2) / 2.0).sum()
        };
        let y = e.forward(&x);
        let gi = e.backward(&y);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let up = loss(&mut e, &xp);
            xp[i] -= 2.0 * eps;
            let down = loss(&mut e, &xp);
            let fd = (up - down) / (2.0 * eps as f64);
            assert!((fd - gi[i] as f64).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new(3);
        assert_eq!(r.forward(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
        assert_eq!(r.backward(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 5.0]);
    }
}
