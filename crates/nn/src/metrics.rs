//! Evaluation helpers.

use crate::sequential::Sequential;

/// Index of the maximum element (ties resolve to the first).
pub fn argmax(v: &[f32]) -> usize {
    assert!(!v.is_empty(), "argmax of empty slice");
    let mut best = 0usize;
    let mut best_v = v[0];
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > best_v {
            best = i;
            best_v = x;
        }
    }
    best
}

/// Examples per batched forward pass during evaluation: large enough to
/// amortize per-layer dispatch and buffer allocation, small enough to bound
/// the cached-activation memory of the conv models (which hold every
/// intermediate feature map for the batch).
const EVAL_BATCH: usize = 64;

/// Classification accuracy of `model` over `(features, labels)` where
/// `features` holds examples of length `example_len` back to back.
///
/// Runs in 64-wide batched forward passes (`EVAL_BATCH`); per-example logits
/// (and therefore the returned accuracy) are bit-identical to evaluating one
/// example at a time.
pub fn accuracy(model: &mut Sequential, features: &[f32], labels: &[usize]) -> f64 {
    let example_len = model.input_len();
    assert_eq!(features.len(), labels.len() * example_len, "features/labels disagree");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (chunk_i, label_chunk) in labels.chunks(EVAL_BATCH).enumerate() {
        let start = chunk_i * EVAL_BATCH * example_len;
        let xs = &features[start..start + label_chunk.len() * example_len];
        let preds = model.predict_batch(xs, label_chunk.len());
        correct += preds.iter().zip(label_chunk).filter(|(p, l)| p == l).count();
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer as _;
    use crate::linear::Linear;
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
        assert_eq!(argmax(&[2.0, 2.0]), 0); // first wins ties
    }

    #[test]
    fn accuracy_on_identity_classifier() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(&mut rng, 2, 2);
        lin.read_params(&[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]); // identity, zero bias
        let mut m = Sequential::new(vec![lin.into()]);
        // Two examples: [1,0] → class 0, [0,1] → class 1, one mislabeled.
        let features = vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let labels = vec![0usize, 1, 1];
        let acc = accuracy(&mut m, &features, &labels);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
