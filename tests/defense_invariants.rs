//! Cross-crate defense invariants: the first stage confines exactly what the
//! paper says it confines, crafted attacks behave as analyzed, and malformed
//! input never reaches the model.

use dpbfl::attack::{craft_uploads, AttackContext, AttackSpec};
use dpbfl::first_stage::{FirstStage, FirstStageVerdict};
use dpbfl::prelude::*;
use dpbfl::second_stage::SecondStage;
use dpbfl_stats::normal::gaussian_vector;
use dpbfl_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 25_450;
const NOISE_STD: f64 = 0.05; // σ = 0.8, b_c = 16

fn stage() -> FirstStage {
    FirstStage::new(NOISE_STD, D, 0.05, 3.0)
}

fn benign(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| gaussian_vector(&mut rng, NOISE_STD, D)).collect()
}

fn ctx<'a>(b: &'a [Vec<f32>], n_byz: usize) -> AttackContext<'a> {
    AttackContext {
        benign_uploads: b,
        d: D,
        n_byzantine: n_byz,
        noise_std: NOISE_STD,
        round: 50,
        total_rounds: 100,
        poisoned_uploads: &[],
    }
}

/// Guideline 2 (paper §4.6): the OptLMP attack is *designed* to pass the
/// first stage — verify it actually does, then verify the second stage
/// rejects it anyway.
#[test]
fn opt_lmp_passes_first_stage_but_loses_second_stage() {
    let b = benign(16, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let byz = craft_uploads(&AttackSpec::OptLmp, &ctx(&b, 8), &mut rng);
    let s = stage();
    for u in &byz {
        assert_eq!(s.check(u), FirstStageVerdict::Accepted, "OptLMP failed the first stage");
    }

    // Second stage with a positive "server gradient" correlated with the
    // benign mean: honest uploads must win the selection.
    let refs: Vec<&[f32]> = b.iter().map(|u| u.as_slice()).collect();
    let server_grad = vecops::mean(&refs).expect("non-empty");
    let mut all = b.clone();
    all.extend(byz);
    let mut second = SecondStage::new(all.len(), 16.0 / 24.0);
    let mut last = None;
    for _ in 0..10 {
        last = Some(second.select(&all, &server_grad));
    }
    let selected = last.expect("ran").selected;
    assert!(
        selected.iter().all(|&i| i < 16),
        "second stage selected a Byzantine OptLMP upload: {selected:?}"
    );
}

/// The "A little" attack's coordinate-wise shift does NOT match the noise
/// distribution — the first stage must reject it (the paper's claim that
/// naive application "will end up rejected by first-stage aggregation").
#[test]
fn a_little_is_rejected_by_first_stage() {
    let b = benign(10, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let byz = craft_uploads(&AttackSpec::ALittle, &ctx(&b, 15), &mut rng);
    let s = stage();
    // The crafted upload is μ − z·s with s ≈ σ'/√n per coordinate: its norm
    // is far below the accepted band.
    assert!(
        !s.check(&byz[0]).is_accepted(),
        "a-little upload unexpectedly passed: verdict {:?}",
        s.check(&byz[0])
    );
}

#[test]
fn inner_product_attack_is_rejected_by_first_stage() {
    let b = benign(10, 5);
    let mut rng = StdRng::seed_from_u64(6);
    // −5 × mean(benign): norm ≈ 5σ'√d/√10 ≈ 1.6 σ'√d — outside the band.
    let byz = craft_uploads(&AttackSpec::InnerProduct { scale: 5.0 }, &ctx(&b, 4), &mut rng);
    assert!(!stage().check(&byz[0]).is_accepted());
}

#[test]
fn gaussian_attack_passes_first_stage_by_construction() {
    let b = benign(5, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let byz = craft_uploads(&AttackSpec::Gaussian, &ctx(&b, 10), &mut rng);
    let s = stage();
    let accepted = byz.iter().filter(|u| s.check(u).is_accepted()).count();
    assert!(accepted >= 8, "only {accepted}/10 Gaussian uploads passed");
}

#[test]
fn malformed_uploads_are_always_zeroed() {
    let s = stage();
    for bad in [vec![f32::NAN; D], vec![f32::INFINITY; D], vec![f32::MAX; D], vec![0.0f32; D]] {
        let mut u = bad;
        let verdict = s.filter(&mut u);
        assert!(!verdict.is_accepted());
        assert!(u.iter().all(|&x| x == 0.0), "malformed upload not zeroed");
    }
}

/// Theorem-2 interpretation: an accepted upload's payload (after removing
/// the noise-scale component) is strictly norm-bounded relative to the noise.
#[test]
fn accepted_uploads_have_bounded_payload() {
    let s = stage();
    let (lo, hi) = s.norm_bounds();
    // The band is narrow: hi/lo − 1 ≈ 6/√(2d) ≈ 2.7 % at d = 25 450.
    assert!(hi / lo < 1.05, "norm band too wide: [{lo}, {hi}]");
    // Any accepted vector has norm ≤ hi, so a worst-case adversarial payload
    // within the band is bounded by hi − lo ≪ noise norm.
    let payload_budget = hi - lo;
    let noise_norm = NOISE_STD * (D as f64).sqrt();
    assert!(payload_budget < 0.05 * noise_norm);
}

/// A defended two-stage configuration exercising both first-stage paths:
/// honest + label-flip Byzantine workers, enough rounds for accepts,
/// KS-rejects and norm-rejects to all occur.
fn two_stage_cfg() -> SimulationConfig {
    let mut cfg =
        SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::SmallMlp { hidden: 8 });
    cfg.per_worker = 128;
    cfg.test_count = 200;
    cfg.n_honest = 4;
    cfg.n_byzantine = 3;
    cfg.epochs = 1.0;
    cfg.epsilon = None;
    cfg.dp.noise_multiplier = 0.5;
    cfg.attack = AttackSpec::LabelFlip;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.5;
    cfg
}

/// The fast path's end-to-end contract: a full two-stage run with the
/// sort-free screen produces a byte-identical `RunSummary` JSON to the same
/// run on the retained always-sort reference path — every verdict, every
/// selection, every accuracy bit.
#[test]
fn fast_and_reference_first_stage_runs_are_byte_identical() {
    let mut cfg = two_stage_cfg();
    assert!(cfg.defense_cfg.ks_fast_path, "fast path is the default");
    let fast = dpbfl::simulation::run(&cfg);
    cfg.defense_cfg.ks_fast_path = false;
    let reference = dpbfl::simulation::run(&cfg);
    // The runs must have actually exercised the first stage.
    let stats = &fast.defense_stats;
    assert!(
        stats.first_stage_rejected_honest + stats.first_stage_rejected_byzantine > 0,
        "configuration never triggered a first-stage rejection"
    );
    let fast_json = serde_json::to_string(&fast.summary()).expect("summary serializes");
    let reference_json = serde_json::to_string(&reference.summary()).expect("summary serializes");
    assert_eq!(fast_json, reference_json);
}

/// The per-chunk scratch buffers introduce no order or thread-count
/// dependence: the fast-path run's `RunSummary` JSON is byte-identical at 1
/// and 4 threads (strengthens `two_stage_identical_across_thread_counts`
/// from accuracy bits to the whole summary).
#[test]
fn fast_path_summary_is_byte_identical_across_thread_counts() {
    let cfg = two_stage_cfg();
    let run_with_threads = |threads: usize| {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("local pool");
        let summary = pool.install(|| dpbfl::simulation::run(&cfg)).summary();
        serde_json::to_string(&summary).expect("summary serializes")
    };
    assert_eq!(run_with_threads(1), run_with_threads(4));
}

/// Second-stage accumulation: a Byzantine worker that passes the first stage
/// with pure noise cannot climb the accumulated-score ranking.
#[test]
fn noise_uploads_cannot_outscore_aligned_uploads() {
    let mut rng = StdRng::seed_from_u64(11);
    let d = 2_000;
    let server_grad = gaussian_vector(&mut rng, 1.0, d);
    let mut second = SecondStage::new(6, 0.5);
    let mut byz_selected = 0usize;
    for round in 0..50 {
        // 3 honest uploads: noise + small component along the server grad.
        let mut uploads: Vec<Vec<f32>> = (0..3)
            .map(|_| {
                let mut u = gaussian_vector(&mut rng, 0.05, d);
                vecops::axpy(0.01, &server_grad, &mut u);
                u
            })
            .collect();
        // 3 Byzantine uploads: pure noise (passed first stage).
        uploads.extend((0..3).map(|_| gaussian_vector(&mut rng, 0.05, d)));
        let sel = second.select(&uploads, &server_grad);
        if round > 10 {
            byz_selected += sel.selected.iter().filter(|&&i| i >= 3).count();
        }
    }
    assert!(byz_selected <= 10, "noise uploads selected {byz_selected} times after warm-up");
}
