//! End-to-end integration tests spanning every crate: data generation →
//! per-example gradients → DP calibration → attacks → two-stage defense.
//!
//! Configurations are deliberately small so the whole suite runs in seconds;
//! the bench binaries cover paper-scale behaviour.

use dpbfl::prelude::*;

fn small(n_byz: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
    cfg.per_worker = 400;
    cfg.test_count = 300;
    cfg.n_honest = 8;
    cfg.n_byzantine = n_byz;
    cfg.epochs = 4.0;
    cfg.epsilon = Some(2.0);
    cfg.seed = 1;
    cfg
}

#[test]
fn honest_dp_training_learns() {
    let r = dpbfl::simulation::run(&small(0));
    assert!(
        r.final_accuracy > 0.8,
        "DP training should learn the synthetic task, got {}",
        r.final_accuracy
    );
    assert!(r.sigma > 0.3, "accountant produced an implausible σ = {}", r.sigma);
}

#[test]
fn label_flip_destroys_undefended_training() {
    let mut cfg = small(12); // 60 % Byzantine
    cfg.attack = AttackSpec::LabelFlip;
    let r = dpbfl::simulation::run(&cfg);
    assert!(
        r.final_accuracy < 0.3,
        "undefended training should collapse under a flipped majority, got {}",
        r.final_accuracy
    );
}

#[test]
fn two_stage_defense_recovers_reference_accuracy() {
    let reference = dpbfl::simulation::run(&small(0)).final_accuracy;
    let mut cfg = small(12);
    cfg.attack = AttackSpec::LabelFlip;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.4;
    let defended = dpbfl::simulation::run(&cfg);
    assert!(
        defended.final_accuracy > reference - 0.1,
        "two-stage defense should track the reference ({reference}), got {}",
        defended.final_accuracy
    );
    // The selector should almost never pick Byzantine uploads.
    let byz_rate = defended.defense_stats.byzantine_selected as f64
        / defended.defense_stats.total_selected.max(1) as f64;
    assert!(byz_rate < 0.2, "Byzantine selection rate too high: {byz_rate}");
}

#[test]
fn defense_survives_opt_lmp_and_gaussian() {
    let reference = dpbfl::simulation::run(&small(0)).final_accuracy;
    for attack in [AttackSpec::OptLmp, AttackSpec::Gaussian] {
        let mut cfg = small(12);
        cfg.attack = attack.clone();
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = 0.4;
        let r = dpbfl::simulation::run(&cfg);
        assert!(
            r.final_accuracy > reference - 0.15,
            "{:?}: got {} vs reference {reference}",
            attack.name(),
            r.final_accuracy
        );
    }
}

#[test]
fn configs_and_summaries_serialize_round_trip() {
    // The experiment-grid harness persists resolved configs and RunSummary
    // values as JSON; both must survive a write → read cycle losslessly.
    let mut cfg = small(4);
    cfg.attack = AttackSpec::Adaptive { ttbb: 0.5, inner: Box::new(AttackSpec::LabelFlip) };
    cfg.defense = DefenseKind::Robust { rule: AggregatorKind::Krum { f: 4 } };
    let json = serde_json::to_string(&cfg).expect("config serializes");
    let back: SimulationConfig = serde_json::from_str(&json).expect("config parses");
    assert_eq!(serde_json::to_string(&back).unwrap(), json, "canonical serialization");
    assert_eq!(back.attack, cfg.attack);
    assert_eq!(back.defense, cfg.defense);

    cfg.defense = DefenseKind::NoDefense;
    cfg.attack = AttackSpec::None;
    cfg.per_worker = 64;
    cfg.test_count = 64;
    cfg.epochs = 1.0;
    cfg.epsilon = None;
    let result = dpbfl::simulation::run(&cfg);
    let summary = result.summary();
    let line = serde_json::to_string(&summary).expect("summary serializes");
    let parsed: RunSummary = serde_json::from_str(&line).expect("summary parses");
    assert_eq!(parsed.final_accuracy.to_bits(), result.final_accuracy.to_bits());
    assert_eq!(parsed.history.len(), result.history.len());
    assert_eq!(parsed.iterations, result.iterations);
}

#[test]
fn prepared_runs_match_standalone_runs() {
    // run() is run_prepared(prepare()): sharing one preparation across
    // configs with equal cache keys must be bit-invisible in the results.
    let mut defended = small(4);
    defended.attack = AttackSpec::Gaussian;
    defended.defense = DefenseKind::TwoStage;
    defended.defense_cfg.gamma = 0.5;
    let mut undefended = defended.clone();
    undefended.defense = DefenseKind::NoDefense;
    assert_eq!(PreparedRun::cache_key(&defended), PreparedRun::cache_key(&undefended));
    let prep = dpbfl::simulation::prepare(&defended);
    for cfg in [&defended, &undefended] {
        let shared = dpbfl::simulation::run_prepared(cfg, &prep);
        let standalone = dpbfl::simulation::run(cfg);
        assert_eq!(shared.final_accuracy.to_bits(), standalone.final_accuracy.to_bits());
        assert_eq!(
            shared.defense_stats.byzantine_selected,
            standalone.defense_stats.byzantine_selected
        );
    }
}

#[test]
fn runs_are_deterministic_across_thread_schedules() {
    let mut cfg = small(4);
    cfg.attack = AttackSpec::Gaussian;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.6;
    let a = dpbfl::simulation::run(&cfg);
    let b = dpbfl::simulation::run(&cfg);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.defense_stats.byzantine_selected, b.defense_stats.byzantine_selected);
    let epochs_a: Vec<_> = a.history.iter().map(|p| p.accuracy.to_bits()).collect();
    let epochs_b: Vec<_> = b.history.iter().map(|p| p.accuracy.to_bits()).collect();
    assert_eq!(epochs_a, epochs_b, "full trajectories must match bit-for-bit");
}

#[test]
fn non_iid_training_still_works() {
    let mut cfg = small(8);
    cfg.iid = false;
    cfg.attack = AttackSpec::LabelFlip;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.5;
    let r = dpbfl::simulation::run(&cfg);
    assert!(r.final_accuracy > 0.6, "non-iid defended accuracy {}", r.final_accuracy);
}

#[test]
fn adaptive_attacker_gains_nothing() {
    let reference = dpbfl::simulation::run(&small(0)).final_accuracy;
    for ttbb in [0.2, 0.6] {
        let mut cfg = small(12);
        cfg.attack = AttackSpec::Adaptive { ttbb, inner: Box::new(AttackSpec::LabelFlip) };
        cfg.defense = DefenseKind::TwoStage;
        cfg.defense_cfg.gamma = 0.4;
        let r = dpbfl::simulation::run(&cfg);
        assert!(
            r.final_accuracy > reference - 0.15,
            "TTBB={ttbb}: got {} vs reference {reference}",
            r.final_accuracy
        );
    }
}

#[test]
fn ood_auxiliary_data_breaks_the_defense() {
    // Supp. Table 17: auxiliary data from a different data space misleads
    // the second stage under label-flip.
    let mut cfg = small(12);
    cfg.attack = AttackSpec::LabelFlip;
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.4;
    cfg.ood_auxiliary = true;
    let ood = dpbfl::simulation::run(&cfg);
    cfg.ood_auxiliary = false;
    let good = dpbfl::simulation::run(&cfg);
    assert!(
        ood.final_accuracy < good.final_accuracy - 0.2,
        "OOD aux should collapse the defense: ood={} good={}",
        ood.final_accuracy,
        good.final_accuracy
    );
}
