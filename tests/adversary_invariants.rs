//! Defense invariants over the full adversary zoo: every stateful
//! multi-round attack, against both the two-stage defense and the
//! undefended baseline, must satisfy
//!
//! 1. **thread identity** — the `RunSummary` JSON is byte-identical at any
//!    rayon thread count (the attack streams draw in cohort order, never in
//!    worker-thread order);
//! 2. **reproducibility** — re-running the same config yields the same
//!    bytes;
//! 3. **monotonicity** — the defended run's final accuracy is at least the
//!    undefended run's, at 40 % and at 60 % Byzantine;
//! 4. **honest feedback** — the adaptive-search attacker's observed
//!    acceptance rate is exactly the stage-1 accept count the telemetry
//!    ledger records, cross-checked by replaying the scale trajectory.
//!
//! The release-scale variants are `#[ignore]`d here and run by CI's
//! bench-smoke pass: `cargo test --release -p dpbfl --test
//! adversary_invariants -- --ignored`.

use dpbfl::attack::{adaptive_search_step, AttackSpec};
use dpbfl::prelude::*;
use std::sync::{Arc, Mutex};

/// The zoo: one representative of each stateful / coordinated attack family,
/// parameterized for a run of `total_rounds` iterations.
fn zoo(total_rounds: usize) -> Vec<AttackSpec> {
    vec![
        AttackSpec::Sleeper {
            turn_round: total_rounds / 2,
            inner: Box::new(AttackSpec::InnerProduct { scale: 5.0 }),
        },
        AttackSpec::Oscillating {
            period: 2,
            duty: 1,
            inner: Box::new(AttackSpec::InnerProduct { scale: 5.0 }),
        },
        AttackSpec::Collusion { alpha: 0.8 },
        AttackSpec::SybilFlood { scale: 0.95 },
        AttackSpec::AdaptiveSearch { init_scale: 1.0, target_accept: 0.9, step: 0.25 },
    ]
}

fn cfg(
    attack: AttackSpec,
    defense: DefenseKind,
    h: usize,
    b: usize,
    per_worker: usize,
) -> SimulationConfig {
    let mut cfg =
        SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::SmallMlp { hidden: 8 });
    cfg.per_worker = per_worker;
    cfg.test_count = 128;
    cfg.n_honest = h;
    cfg.n_byzantine = b;
    cfg.epochs = 1.0;
    cfg.epsilon = None;
    cfg.dp.noise_multiplier = 0.5;
    cfg.defense = defense;
    cfg.attack = attack;
    cfg
}

fn assert_defended_at_least_undefended_at(h: usize, b: usize, per_worker: usize, epochs: f64) {
    let rounds = {
        let mut c = cfg(AttackSpec::None, DefenseKind::TwoStage, h, b, per_worker);
        c.epochs = epochs;
        c.iterations()
    };
    for attack in zoo(rounds) {
        let name = attack.name();
        let mut defended_cfg = cfg(attack.clone(), DefenseKind::TwoStage, h, b, per_worker);
        defended_cfg.epochs = epochs;
        let mut undefended_cfg = cfg(attack, DefenseKind::NoDefense, h, b, per_worker);
        undefended_cfg.epochs = epochs;
        let defended = dpbfl::simulation::run(&defended_cfg);
        let undefended = dpbfl::simulation::run(&undefended_cfg);
        let (da, ua) = (defended.summary().final_accuracy, undefended.summary().final_accuracy);
        assert!(
            da >= ua,
            "{name} at {b}/{} Byzantine: defended accuracy {da} < undefended {ua}",
            h + b
        );
    }
}

fn summary_with_threads(cfg: &SimulationConfig, threads: usize) -> String {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("local pool");
    let summary = pool.install(|| dpbfl::simulation::run(cfg)).summary();
    serde_json::to_string(&summary).expect("summary serializes")
}

/// Every zoo attack × {TwoStage, NoDefense}: byte-identical summaries at 1
/// and 4 threads, and across repeated runs. Stateful attacks are the point
/// of this suite — their feedback loops must observe the same per-round
/// accept counts regardless of how the cohort was sharded across threads.
#[test]
fn zoo_summaries_are_byte_identical_across_threads_and_runs() {
    for defense in [DefenseKind::TwoStage, DefenseKind::NoDefense] {
        for attack in zoo(4) {
            let c = cfg(attack, defense.clone(), 4, 6, 64);
            assert_eq!(c.iterations(), 4);
            let name = c.attack.name();
            let single = summary_with_threads(&c, 1);
            let multi = summary_with_threads(&c, 4);
            assert_eq!(single, multi, "{name} vs {defense:?}: thread-count identity broken");
            let again = summary_with_threads(&c, 1);
            assert_eq!(single, again, "{name} vs {defense:?}: run not reproducible");
        }
    }
}

/// Monotonicity at 40 % Byzantine (3 honest, 2 Byzantine).
#[test]
fn defense_never_hurts_at_forty_percent_byzantine() {
    assert_defended_at_least_undefended_at(3, 2, 128, 1.0);
}

/// Monotonicity at 60 % Byzantine (2 honest, 3 Byzantine) — past the
/// classical 1/2 breakdown point, where the paper's two-stage protocol is
/// the only baseline still standing.
#[test]
fn defense_never_hurts_at_sixty_percent_byzantine() {
    assert_defended_at_least_undefended_at(2, 3, 128, 1.0);
}

/// The adaptive attacker's feedback is honest: each round's recorded
/// `attack_scale` replays exactly — in f64 bits — from the init scale and
/// the per-round stage-1 accept counts in the same telemetry ledger. The
/// observed acceptance rate the attacker tunes on IS the defense's own
/// accept count; there is no side channel and no skew.
#[test]
fn adaptive_search_scale_replays_from_recorded_accept_rates() {
    let (init_scale, target_accept, step) = (1.0, 0.9, 0.25);
    let c = cfg(
        AttackSpec::AdaptiveSearch { init_scale, target_accept, step },
        DefenseKind::TwoStage,
        4,
        6,
        128,
    );
    let prep = dpbfl::simulation::prepare(&c);
    let sink = Arc::new(Mutex::new(MemorySink::default()));
    let tel = Telemetry::new(Box::new(Arc::clone(&sink)));
    run_prepared_telemetry(&c, &prep, &tel);
    let rounds = sink.lock().unwrap().rounds.clone();
    assert_eq!(rounds.len(), c.iterations(), "one metrics record per round");

    let mut scale = init_scale;
    for m in &rounds {
        let recorded = m
            .attack_scale
            .unwrap_or_else(|| panic!("round {}: adaptive run must record attack_scale", m.round));
        assert_eq!(
            recorded.to_bits(),
            scale.to_bits(),
            "round {}: recorded scale {recorded} != replayed {scale}",
            m.round
        );
        let rate = if m.cohort == 0 { 1.0 } else { m.accepted as f64 / m.cohort as f64 };
        scale = adaptive_search_step(scale, rate, target_accept, step);
    }
    // The feedback loop is live: with a 0.9 target over 10-member cohorts
    // the rate cannot sit exactly at target, so the scale must have moved.
    assert_ne!(rounds.last().unwrap().attack_scale, Some(init_scale), "scale never adapted");
}

/// Non-adaptive runs record no attack scale.
#[test]
fn non_adaptive_runs_record_no_attack_scale() {
    let c = cfg(AttackSpec::Collusion { alpha: 0.8 }, DefenseKind::TwoStage, 4, 6, 64);
    let prep = dpbfl::simulation::prepare(&c);
    let sink = Arc::new(Mutex::new(MemorySink::default()));
    let tel = Telemetry::new(Box::new(Arc::clone(&sink)));
    run_prepared_telemetry(&c, &prep, &tel);
    assert!(sink.lock().unwrap().rounds.iter().all(|m| m.attack_scale.is_none()));
}

// ---------------------------------------------------------------------------
// Release-scale variants, run by CI's bench-smoke pass with `--ignored`.
// ---------------------------------------------------------------------------

/// Thread identity at release scale and a wider thread spread.
#[test]
#[ignore = "release-scale: run via cargo test --release -- --ignored"]
fn release_zoo_summaries_are_byte_identical_across_threads() {
    for defense in [DefenseKind::TwoStage, DefenseKind::NoDefense] {
        for attack in zoo(16) {
            let c = cfg(attack, defense.clone(), 4, 6, 256);
            assert_eq!(c.iterations(), 16);
            let name = c.attack.name();
            let single = summary_with_threads(&c, 1);
            for threads in [2, 8] {
                assert_eq!(
                    single,
                    summary_with_threads(&c, threads),
                    "{name} vs {defense:?}: identity broken at {threads} threads"
                );
            }
        }
    }
}

/// Monotonicity at release scale, both Byzantine fractions — long enough
/// training (4 epochs) for the defended run to actually climb away from
/// chance accuracy, as in the quickstart headline.
#[test]
#[ignore = "release-scale: run via cargo test --release -- --ignored"]
fn release_defense_never_hurts() {
    assert_defended_at_least_undefended_at(6, 4, 256, 4.0);
    assert_defended_at_least_undefended_at(4, 6, 256, 4.0);
}
