//! The paper's Table 1 failure modes, as executable assertions: every prior
//! defense breaks under a Byzantine majority while the two-stage protocol
//! holds.

use dpbfl::baseline::{run_sign_dp, SignDpConfig};
use dpbfl::prelude::*;

fn base(n_byz: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
    cfg.per_worker = 400;
    cfg.test_count = 300;
    cfg.n_honest = 8;
    cfg.n_byzantine = n_byz;
    cfg.epochs = 4.0;
    cfg.epsilon = Some(2.0);
    cfg.attack = if n_byz > 0 { AttackSpec::LabelFlip } else { AttackSpec::None };
    cfg
}

#[test]
fn classical_robust_rules_fail_at_60_percent() {
    let reference = dpbfl::simulation::run(&base(0)).final_accuracy;
    for (name, agg) in [
        ("krum", AggregatorKind::Krum { f: 12 }),
        ("coordinate-median", AggregatorKind::CoordinateMedian),
        ("geometric-median", AggregatorKind::GeometricMedian),
    ] {
        let mut cfg = base(12); // 60 %
        cfg.defense = DefenseKind::Robust { rule: agg };
        let r = dpbfl::simulation::run(&cfg);
        assert!(
            r.final_accuracy < reference - 0.3,
            "{name} unexpectedly survived a Byzantine majority: {} vs ref {reference}",
            r.final_accuracy
        );
    }
}

#[test]
fn classical_rules_do_work_below_majority() {
    // Sanity: the baselines are implemented correctly — coordinate median
    // holds *below* majority (its design regime) and collapses above it.
    // Note it still pays a DP tax relative to plain averaging: the median of
    // n noisy uploads reduces variance less than their mean, which is
    // exactly the paper's point about bolting robust rules onto DP ([31]).
    let run_with_byz = |n_byz: usize| {
        let mut cfg = base(n_byz);
        cfg.defense = DefenseKind::Robust { rule: AggregatorKind::CoordinateMedian };
        dpbfl::simulation::run(&cfg).final_accuracy
    };
    let below = run_with_byz(2); // 20 % of 10 total
    let above = run_with_byz(12); // 60 % of 20 total
    assert!(below > 0.45, "coordinate median failed below majority: {below}");
    assert!(below > above + 0.2, "majority should break the median: below={below} above={above}");
}

#[test]
fn two_stage_succeeds_where_baselines_fail() {
    let reference = dpbfl::simulation::run(&base(0)).final_accuracy;
    let mut cfg = base(12);
    cfg.defense = DefenseKind::TwoStage;
    cfg.defense_cfg.gamma = 0.4;
    let r = dpbfl::simulation::run(&cfg);
    assert!(
        r.final_accuracy > reference - 0.1,
        "two-stage lost utility: {} vs ref {reference}",
        r.final_accuracy
    );
}

#[test]
fn sign_dp_baseline_fails_under_majority() {
    let mk = |n_byz: usize| SignDpConfig {
        dataset: SyntheticSpec::mnist_like(),
        model: ModelKind::SmallMlp { hidden: 12 },
        per_worker: 200,
        test_count: 300,
        n_honest: 6,
        n_byzantine: n_byz,
        epochs: 4.0,
        lr: 0.002,
        batch_size: 16,
        flip_prob: SignDpConfig::flip_prob_for_epsilon(1.0),
        seed: 5,
    };
    let honest = run_sign_dp(&mk(0));
    let attacked = run_sign_dp(&mk(8)); // majority
    assert!(honest.final_accuracy > 0.35, "sign-DP should learn: {}", honest.final_accuracy);
    assert!(
        attacked.final_accuracy < honest.final_accuracy - 0.15,
        "sign-DP should fail under majority: {} vs {}",
        attacked.final_accuracy,
        honest.final_accuracy
    );
}

#[test]
fn dp_clip_plus_krum_fails_at_majority() {
    // The [30]-style combination: clipping DP-SGD + Krum.
    let reference = dpbfl::simulation::run(&base(0)).final_accuracy;
    let cfg = dpbfl::baseline::guerraoui_style(base(12), 1.0, AggregatorKind::Krum { f: 12 });
    let r = dpbfl::simulation::run(&cfg);
    assert!(
        r.final_accuracy < reference - 0.25,
        "[30]-style defense unexpectedly survived: {} vs ref {reference}",
        r.final_accuracy
    );
}
