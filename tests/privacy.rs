//! Privacy-facing integration tests: the accountant's calibration flows
//! through the simulation correctly and noise is actually injected.

use dpbfl::prelude::*;
use dpbfl_dp::{paper_delta, RdpAccountant};
use dpbfl_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn simulation_sigma_matches_direct_accountant_call() {
    let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
    cfg.per_worker = 256;
    cfg.test_count = 100;
    cfg.n_honest = 4;
    cfg.epochs = 2.0;
    cfg.epsilon = Some(1.0);
    let r = dpbfl::simulation::run(&cfg);

    let q = 16.0 / 256.0;
    let acc = RdpAccountant::new(q, cfg.iterations() as u64);
    let expected = acc.find_noise_multiplier(1.0, paper_delta(256));
    assert!(
        (r.sigma - expected).abs() < 1e-9,
        "simulation σ = {} vs accountant σ = {expected}",
        r.sigma
    );
    assert!((r.delta - paper_delta(256)).abs() < 1e-15);
}

#[test]
fn stronger_privacy_means_more_noise_and_smaller_lr() {
    let run_at = |eps: f64| {
        let mut cfg = SimulationConfig::quick(SyntheticSpec::mnist_like(), ModelKind::Mlp784);
        cfg.per_worker = 256;
        cfg.test_count = 100;
        cfg.n_honest = 4;
        cfg.epochs = 1.0;
        cfg.epsilon = Some(eps);
        dpbfl::simulation::run(&cfg)
    };
    let strong = run_at(0.25);
    let weak = run_at(2.0);
    assert!(strong.sigma > weak.sigma, "σ(0.25) = {} ≤ σ(2) = {}", strong.sigma, weak.sigma);
    assert!(strong.lr < weak.lr, "lr must shrink with σ");
}

#[test]
fn worker_uploads_carry_calibrated_noise() {
    // A worker's upload norm must match the √(σ²d)/b_c prediction — i.e.
    // the noise the accountant calibrated is really there.
    use dpbfl::config::DpSgdConfig;
    use dpbfl::worker::DpWorker;
    use dpbfl_nn::zoo;

    let mut rng = StdRng::seed_from_u64(0);
    let model = zoo::mlp_784(&mut rng);
    let d = model.param_len();
    let data = SyntheticSpec::mnist_like().generate(64, 3);
    let sigma = 1.5;
    let cfg = DpSgdConfig { noise_multiplier: sigma, ..Default::default() };
    let mut w = DpWorker::new(model, data, cfg, 9);
    let params = vec![0.0f32; d];
    let up = w.local_step(&params);
    let norm = vecops::l2_norm(&up);
    let predicted = sigma * (d as f64).sqrt() / 16.0;
    assert!(
        (norm / predicted - 1.0).abs() < 0.1,
        "upload norm {norm} vs noise prediction {predicted}"
    );
}

#[test]
fn dp_costs_utility_monotonically() {
    // Supp. Tables 15/16 shape: Non-DP ≥ ε=2 ≥ ε=0.125 (with margin slack
    // for run-to-run noise at this tiny scale).
    let run_at = |eps: Option<f64>| {
        let mut cfg = SimulationConfig::quick(SyntheticSpec::fashion_like(), ModelKind::Mlp784);
        cfg.per_worker = 300;
        cfg.test_count = 300;
        cfg.n_honest = 8;
        cfg.epochs = 3.0;
        match eps {
            Some(e) => cfg.epsilon = Some(e),
            None => {
                cfg.protocol = WorkerProtocol::Plain;
                cfg.epsilon = None;
            }
        }
        dpbfl::simulation::run(&cfg).final_accuracy
    };
    let non_dp = run_at(None);
    let dp2 = run_at(Some(2.0));
    let dp0125 = run_at(Some(0.125));
    assert!(non_dp >= dp2 - 0.05, "non-DP {non_dp} vs ε=2 {dp2}");
    assert!(dp2 > dp0125 + 0.05, "ε=2 {dp2} vs ε=0.125 {dp0125}");
}
